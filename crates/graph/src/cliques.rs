//! Maximal clique enumeration (Bron–Kerbosch with pivoting) and maximum
//! clique search, on word-packed bitsets.
//!
//! The paper covers the edges of the instruction-set conflict graph with
//! cliques and prefers *maximal* cliques because every clique becomes one
//! artificial scheduler resource: fewer, larger cliques mean fewer conflict
//! checks at schedule time (section 6.3: "any clique cover will lead to a
//! valid schedule. The only motivation to look for a maximal clique cover is
//! to minimize the run time of the scheduler").
//!
//! # Implementation notes
//!
//! The Bron–Kerbosch recursion carries the candidate set P and exclusion
//! set X as bitsets over the node universe. Neighbourhood restriction
//! (`P ∩ N(v)`, `X ∩ N(v)`) is a word-parallel AND against the graph's
//! packed adjacency rows, and pivot selection maximises `|P ∩ N(u)|` via
//! fused AND + popcount. All P/X/candidate buffers live in a
//! [`CliqueScratch`] pool preallocated to the maximum recursion depth, so
//! **the recursion performs zero heap allocations** — only the output
//! cliques themselves are allocated. The pre-bitset implementation is
//! retained as [`crate::naive::naive_maximal_cliques`] for differential
//! testing and benchmarking.

use crate::bitset::{words_for, Bitset, Ones};
use crate::UndirectedGraph;

/// Preallocated per-depth P/X/candidate buffers for [`maximal_cliques_with`].
///
/// One level per possible recursion depth (`n + 1`), three rows of
/// `⌈n/64⌉` words each, plus the running clique. Reusable across calls on
/// graphs with the same node count; building one per call is what
/// [`maximal_cliques`] does.
pub struct CliqueScratch {
    n: usize,
    stride: usize,
    /// `(n + 1) * stride` words each: per-depth P, X, and branch candidates.
    p: Vec<u64>,
    x: Vec<u64>,
    cand: Vec<u64>,
    /// The running clique R (capacity `n`, never reallocates).
    r: Vec<usize>,
}

impl CliqueScratch {
    /// Scratch for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        let stride = words_for(n);
        let pool = (n + 1) * stride;
        CliqueScratch {
            n,
            stride,
            p: vec![0; pool],
            x: vec![0; pool],
            cand: vec![0; pool],
            r: Vec::with_capacity(n),
        }
    }

    /// The node count this scratch was sized for.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Enumerates all maximal cliques of `g`.
///
/// Uses Bron–Kerbosch with greedy pivoting over bitsets. Each returned
/// clique is sorted ascending. Isolated nodes are returned as singleton
/// cliques; the empty graph on zero nodes yields no cliques.
///
/// # Example
///
/// ```
/// use dspcc_graph::{UndirectedGraph, cliques::maximal_cliques};
///
/// let mut g = UndirectedGraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(0, 2);
/// g.add_edge(2, 3);
/// let mut cliques = maximal_cliques(&g);
/// cliques.sort();
/// assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
/// ```
pub fn maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut scratch = CliqueScratch::new(g.node_count());
    let mut out = Vec::new();
    maximal_cliques_with(g, &mut scratch, |clique| {
        let mut c = clique.to_vec();
        c.sort_unstable();
        out.push(c);
    });
    out
}

/// As [`maximal_cliques`], but visiting each maximal clique through a
/// callback using caller-provided scratch, so repeated enumeration (e.g.
/// inside covers or benches) performs no per-call allocation beyond what
/// the callback does. Visited cliques are in discovery order, **unsorted**.
///
/// # Panics
///
/// Panics if `scratch` was built for a different node count.
pub fn maximal_cliques_with(
    g: &UndirectedGraph,
    scratch: &mut CliqueScratch,
    mut visit: impl FnMut(&[usize]),
) {
    let n = g.node_count();
    assert_eq!(scratch.n, n, "scratch sized for a different graph");
    if n == 0 {
        return;
    }
    let stride = scratch.stride;
    // Depth 0: P = all nodes, X = ∅.
    scratch.p[..stride].fill(!0);
    let tail = n % 64;
    if tail != 0 {
        scratch.p[stride - 1] = (1u64 << tail) - 1;
    }
    scratch.x[..stride].fill(0);
    scratch.r.clear();
    bk(
        g,
        &mut scratch.r,
        &mut scratch.p,
        &mut scratch.x,
        &mut scratch.cand,
        stride,
        &mut visit,
    );
}

/// One Bron–Kerbosch level. `p`/`x`/`cand` hold this level's row first and
/// all deeper rows after it; children recurse on the tails.
#[allow(clippy::too_many_arguments)]
fn bk(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    p: &mut [u64],
    x: &mut [u64],
    cand: &mut [u64],
    stride: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    let (p_cur, p_rest) = p.split_at_mut(stride);
    let (x_cur, x_rest) = x.split_at_mut(stride);
    let (cand_cur, cand_rest) = cand.split_at_mut(stride);

    if p_cur.iter().all(|&w| w == 0) {
        if x_cur.iter().all(|&w| w == 0) && !r.is_empty() {
            visit(r);
        }
        return;
    }
    // Pivot on the vertex of P ∪ X with the most neighbours in P (fused
    // AND + popcount per row); only P ∖ N(pivot) needs branching.
    let mut pivot = usize::MAX;
    let mut best = usize::MAX;
    for u in Ones::new(p_cur).chain(Ones::new(x_cur)) {
        let nb = g.neighbors_mask(u);
        let uncovered: usize = p_cur
            .iter()
            .zip(nb)
            .map(|(&pw, &nw)| (pw & !nw).count_ones() as usize)
            .sum();
        if uncovered < best {
            best = uncovered;
            pivot = u;
            if uncovered == 0 {
                break;
            }
        }
    }
    let pivot_nb = g.neighbors_mask(pivot);
    for (c, (&pw, &nw)) in cand_cur.iter_mut().zip(p_cur.iter().zip(pivot_nb)) {
        *c = pw & !nw;
    }
    // Destructive iteration over the fixed candidate row: P and X mutate
    // as we branch, the candidate set does not.
    while let Some(v) = Ones::new(cand_cur).next() {
        cand_cur[v / 64] &= !(1 << (v % 64));
        let nv = g.neighbors_mask(v);
        r.push(v);
        for w in 0..stride {
            p_rest[w] = p_cur[w] & nv[w];
            x_rest[w] = x_cur[w] & nv[w];
        }
        bk(g, r, p_rest, x_rest, cand_rest, stride, visit);
        r.pop();
        p_cur[v / 64] &= !(1 << (v % 64));
        x_cur[v / 64] |= 1 << (v % 64);
    }
}

/// Finds one maximum-cardinality clique of `g` (largest maximal clique).
///
/// Branch and bound with a greedy-colouring upper bound (Tomita-style):
/// the candidate set is greedily partitioned into independent colour
/// classes, and a branch is pruned when `|R| + colour(v)` cannot beat the
/// incumbent — far faster than materializing every maximal clique, which
/// is what the retained [`crate::naive::naive_maximum_clique`] does.
///
/// Returns an empty vector for a graph with zero nodes.
pub fn maximum_clique(g: &UndirectedGraph) -> Vec<usize> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::with_capacity(n);
    let mut p = Bitset::new(n);
    p.insert_all();
    mc_expand(g, &mut r, &mut p, &mut best);
    best.sort_unstable();
    best
}

fn mc_expand(g: &UndirectedGraph, r: &mut Vec<usize>, p: &mut Bitset, best: &mut Vec<usize>) {
    if p.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Greedy colouring of P: repeatedly peel an independent set; every
    // vertex in colour class c can extend R by at most c more vertices.
    let n = g.node_count();
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(p.count());
    let mut uncolored = p.clone();
    let mut class = Bitset::new(n);
    let mut color = 0usize;
    while !uncolored.is_empty() {
        color += 1;
        class.copy_from_words(uncolored.words());
        while let Some(v) = class.take_first() {
            uncolored.remove(v);
            class.difference_words(g.neighbors_mask(v));
            order.push((v, color));
        }
    }
    // Branch in reverse colour order: the first prune kills the rest.
    while let Some((v, bound)) = order.pop() {
        if r.len() + bound <= best.len() {
            return;
        }
        r.push(v);
        // Child candidates: unbranched P restricted to N(v). Branched
        // vertices were already removed from `p`, and `v ∉ N(v)`.
        let mut child = p.clone();
        child.intersect_words(g.neighbors_mask(v));
        mc_expand(g, r, &mut child, best);
        r.pop();
        p.remove(v);
    }
}

/// Extends `clique` to a maximal clique of `g` by greedily absorbing
/// compatible nodes in index order (word-parallel candidate pruning).
///
/// # Panics
///
/// Panics if `clique` is not a clique of `g`.
pub fn extend_to_maximal(g: &UndirectedGraph, clique: &[usize]) -> Vec<usize> {
    assert!(g.is_clique(clique), "input must be a clique");
    let n = g.node_count();
    let mut result: Vec<usize> = clique.to_vec();
    if n == 0 {
        return result;
    }
    // Candidates: adjacent to every current member. Members themselves are
    // excluded automatically (v ∉ N(v)).
    let mut cand = Bitset::new(n);
    cand.insert_all();
    for &u in clique {
        cand.intersect_words(g.neighbors_mask(u));
    }
    while let Some(v) = cand.take_first() {
        result.push(v);
        cand.intersect_words(g.neighbors_mask(v));
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_maximal_cliques, naive_maximum_clique};

    fn graph(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = UndirectedGraph::new(0);
        assert!(maximal_cliques(&g).is_empty());
        assert!(maximum_clique(&g).is_empty());
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = UndirectedGraph::new(3);
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn triangle_is_single_maximal_clique() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(maximal_cliques(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn path_has_edge_cliques() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn paper_conflict_graph_maximal_cliques() {
        // Conflict graph of instruction set I (paper figure 6):
        // nodes S=0,T=1,U=2,V=3,X=4,Y=5.
        let g = graph(
            6,
            &[
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
            ],
        );
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        // The paper's cover uses the maximal cliques {T,U,Y} and {T,V,X};
        // both must be found here ({1,2,5} and {1,3,4}).
        assert!(cliques.contains(&vec![1, 2, 5]));
        assert!(cliques.contains(&vec![1, 3, 4]));
        for c in &cliques {
            assert!(g.is_clique(c));
        }
    }

    #[test]
    fn maximum_clique_of_k4_plus_pendant() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        assert_eq!(maximum_clique(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn extend_to_maximal_grows_edge() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert_eq!(extend_to_maximal(&g, &[0, 1]), vec![0, 1, 2]);
        assert_eq!(extend_to_maximal(&g, &[3]), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "must be a clique")]
    fn extend_to_maximal_rejects_non_clique() {
        let g = graph(3, &[(0, 1)]);
        extend_to_maximal(&g, &[0, 2]);
    }

    #[test]
    fn every_maximal_clique_is_maximal() {
        let g = graph(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 2),
                (3, 5),
            ],
        );
        for c in maximal_cliques(&g) {
            assert!(g.is_clique(&c));
            // No vertex outside c is adjacent to all of c.
            for v in 0..g.node_count() {
                if !c.contains(&v) {
                    assert!(
                        !c.iter().all(|&u| g.has_edge(u, v)),
                        "clique {c:?} not maximal, can add {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitset_bk_matches_naive_on_dense_graph() {
        // Deterministic pseudo-random graph, ~50% density.
        let n = 20;
        let mut g = UndirectedGraph::new(n);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(2) {
                    g.add_edge(a, b);
                }
            }
        }
        let mut fast = maximal_cliques(&g);
        let mut slow = naive_maximal_cliques(&g);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);
        assert_eq!(maximum_clique(&g).len(), naive_maximum_clique(&g).len());
    }

    #[test]
    fn scratch_reuse_across_graphs() {
        let g1 = graph(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let g2 = graph(4, &[(0, 3), (1, 2)]);
        let mut scratch = CliqueScratch::new(4);
        let mut count1 = 0;
        maximal_cliques_with(&g1, &mut scratch, |_| count1 += 1);
        assert_eq!(count1, 2);
        let mut count2 = 0;
        maximal_cliques_with(&g2, &mut scratch, |_| count2 += 1);
        assert_eq!(count2, 2);
        assert_eq!(scratch.node_count(), 4);
    }

    #[test]
    fn maximum_clique_on_disconnected_cliques() {
        // K3 on {0,1,2}, K5 on {3..8}.
        let mut edges = vec![(0, 1), (1, 2), (0, 2)];
        for a in 3..8 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        let g = graph(8, &edges);
        assert_eq!(maximum_clique(&g), vec![3, 4, 5, 6, 7]);
    }
}
