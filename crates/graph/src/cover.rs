//! Edge clique covers.
//!
//! An *edge clique cover* of an undirected graph is a set of cliques such
//! that every edge lies inside at least one clique. In the paper
//! (section 6.3) the conflict graph of the instruction set is covered with
//! cliques and each clique becomes one *artificial resource*; an RT of class
//! `C` gets a usage `clique = C` for every clique containing `C`. Two RTs
//! whose classes conflict then always disagree on at least one artificial
//! resource, so the scheduler can never pack them into one instruction.
//!
//! Correctness does not depend on which cover is chosen — "any clique cover
//! will lead to a valid schedule" — but the number of cliques controls how
//! many artificial resources each RT carries and therefore scheduler
//! run-time. Three strategies with different cost/quality trade-offs are
//! provided:
//!
//! * [`per_edge_clique_cover`] — one 2-clique per edge; trivially correct,
//!   largest cover (the baseline of experiment E8).
//! * [`greedy_edge_clique_cover`] — extends each uncovered edge to a maximal
//!   clique; near-minimal in practice, linear-ish cost.
//! * [`minimum_edge_clique_cover`] — exact minimum via branch and bound over
//!   maximal cliques; exponential, intended for graphs of tens of nodes
//!   (conflict graphs are small: one node per RT class).

use crate::cliques::{extend_to_maximal, maximal_cliques};
use crate::UndirectedGraph;

/// Returns the trivial cover with one two-node clique per edge.
///
/// This is the worst valid cover and serves as the ablation baseline: it
/// maximises the number of artificial resources.
pub fn per_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    g.edges().map(|(a, b)| vec![a, b]).collect()
}

/// Greedy cover: repeatedly takes an uncovered edge and extends it to a
/// maximal clique, until all edges are covered.
///
/// Every returned clique is maximal in `g`. The cover size is at most the
/// number of edges and usually far smaller.
pub fn greedy_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let mut cover: Vec<Vec<usize>> = Vec::new();
    let mut covered = UndirectedGraph::new(g.node_count());
    for (a, b) in g.edges() {
        if covered.has_edge(a, b) {
            continue;
        }
        let clique = extend_to_maximal(g, &[a, b]);
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                covered.add_edge(u, v);
            }
        }
        cover.push(clique);
    }
    cover
}

/// Exact minimum edge clique cover via branch and bound over maximal
/// cliques.
///
/// An optimal cover always exists that uses only maximal cliques (any
/// non-maximal clique in a cover can be extended without uncovering
/// anything), so the search branches on which maximal clique covers the
/// first yet-uncovered edge.
///
/// Worst-case exponential; fine for the conflict graphs of real instruction
/// sets (≤ a few dozen RT classes). For larger graphs use
/// [`greedy_edge_clique_cover`].
pub fn minimum_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    if edges.is_empty() {
        return Vec::new();
    }
    let cliques = maximal_cliques(g);
    // Precompute, per edge, which maximal cliques cover it.
    let covers_edge = |c: &[usize], e: (usize, usize)| c.contains(&e.0) && c.contains(&e.1);
    let mut best: Vec<Vec<usize>> = greedy_edge_clique_cover(g);
    let mut chosen: Vec<usize> = Vec::new();

    fn search(
        edges: &[(usize, usize)],
        cliques: &[Vec<usize>],
        covers_edge: &dyn Fn(&[usize], (usize, usize)) -> bool,
        covered: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
        best: &mut Vec<Vec<usize>>,
    ) {
        if chosen.len() + 1 >= best.len() {
            return; // cannot improve
        }
        let first_uncovered = match covered.iter().position(|&c| !c) {
            None => {
                *best = chosen.iter().map(|&i| cliques[i].clone()).collect();
                return;
            }
            Some(i) => i,
        };
        let e = edges[first_uncovered];
        for (ci, clique) in cliques.iter().enumerate() {
            if !covers_edge(clique, e) {
                continue;
            }
            let newly: Vec<usize> = (0..edges.len())
                .filter(|&i| !covered[i] && covers_edge(clique, edges[i]))
                .collect();
            for &i in &newly {
                covered[i] = true;
            }
            chosen.push(ci);
            search(edges, cliques, covers_edge, covered, chosen, best);
            chosen.pop();
            for &i in &newly {
                covered[i] = false;
            }
        }
    }

    let mut covered = vec![false; edges.len()];
    search(
        &edges,
        &cliques,
        &covers_edge,
        &mut covered,
        &mut chosen,
        &mut best,
    );
    best
}

/// Checks that `cover` is a valid edge clique cover of `g`: every member is
/// a clique of `g` and every edge of `g` is inside at least one member.
///
/// Returns the first violation found, or `Ok(())`.
pub fn validate_cover(g: &UndirectedGraph, cover: &[Vec<usize>]) -> Result<(), CoverError> {
    for (i, c) in cover.iter().enumerate() {
        if !g.is_clique(c) {
            return Err(CoverError::NotAClique { index: i });
        }
    }
    for (a, b) in g.edges() {
        if !cover.iter().any(|c| c.contains(&a) && c.contains(&b)) {
            return Err(CoverError::EdgeUncovered { a, b });
        }
    }
    Ok(())
}

/// Violation found by [`validate_cover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverError {
    /// `cover[index]` is not a clique of the graph.
    NotAClique {
        /// Index of the offending set within the cover.
        index: usize,
    },
    /// Edge `{a, b}` is not contained in any clique of the cover.
    EdgeUncovered {
        /// Lower endpoint.
        a: usize,
        /// Higher endpoint.
        b: usize,
    },
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::NotAClique { index } => {
                write!(f, "cover member {index} is not a clique")
            }
            CoverError::EdgeUncovered { a, b } => {
                write!(f, "edge {a}-{b} is not covered by any clique")
            }
        }
    }
}

impl std::error::Error for CoverError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    fn paper_conflict_graph() -> UndirectedGraph {
        // S=0,T=1,U=2,V=3,X=4,Y=5 (paper figure 6).
        graph(
            6,
            &[
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
            ],
        )
    }

    #[test]
    fn per_edge_cover_is_valid() {
        let g = paper_conflict_graph();
        let cover = per_edge_clique_cover(&g);
        assert_eq!(cover.len(), 10);
        validate_cover(&g, &cover).unwrap();
    }

    #[test]
    fn greedy_cover_is_valid_and_smaller() {
        let g = paper_conflict_graph();
        let cover = greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
        assert!(cover.len() < 10, "greedy should beat per-edge: {cover:?}");
    }

    #[test]
    fn paper_cover_size_is_six() {
        // The paper lists a cover of size 6:
        // {S,X},{S,Y},{T,U,Y},{T,V,X},{U,X},{V,Y}. The minimum cover should
        // be no larger.
        let g = paper_conflict_graph();
        let paper_cover = vec![
            vec![0, 4],
            vec![0, 5],
            vec![1, 2, 5],
            vec![1, 3, 4],
            vec![2, 4],
            vec![3, 5],
        ];
        validate_cover(&g, &paper_cover).unwrap();
        let min = minimum_edge_clique_cover(&g);
        validate_cover(&g, &min).unwrap();
        assert!(min.len() <= 6, "minimum {:?} larger than paper's 6", min);
    }

    #[test]
    fn minimum_cover_of_triangle_is_one_clique() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let min = minimum_edge_clique_cover(&g);
        assert_eq!(min, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn minimum_cover_empty_graph() {
        let g = UndirectedGraph::new(4);
        assert!(minimum_edge_clique_cover(&g).is_empty());
        assert!(greedy_edge_clique_cover(&g).is_empty());
        assert!(per_edge_clique_cover(&g).is_empty());
    }

    #[test]
    fn validate_rejects_non_clique() {
        let g = graph(3, &[(0, 1)]);
        let bad = vec![vec![0, 1, 2]];
        assert_eq!(
            validate_cover(&g, &bad),
            Err(CoverError::NotAClique { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_uncovered_edge() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let bad = vec![vec![0, 1]];
        assert_eq!(
            validate_cover(&g, &bad),
            Err(CoverError::EdgeUncovered { a: 1, b: 2 })
        );
    }

    #[test]
    fn cover_error_display() {
        let e = CoverError::EdgeUncovered { a: 1, b: 2 };
        assert_eq!(e.to_string(), "edge 1-2 is not covered by any clique");
        let e = CoverError::NotAClique { index: 3 };
        assert_eq!(e.to_string(), "cover member 3 is not a clique");
    }

    #[test]
    fn greedy_on_star_graph() {
        // Star K1,4: centre 0. Every edge is its own maximal clique.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cover = greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
        assert_eq!(cover.len(), 4);
    }

    #[test]
    fn minimum_cover_of_two_triangles_sharing_a_vertex() {
        let g = graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let min = minimum_edge_clique_cover(&g);
        validate_cover(&g, &min).unwrap();
        assert_eq!(min.len(), 2);
    }
}
