//! Edge clique covers.
//!
//! An *edge clique cover* of an undirected graph is a set of cliques such
//! that every edge lies inside at least one clique. In the paper
//! (section 6.3) the conflict graph of the instruction set is covered with
//! cliques and each clique becomes one *artificial resource*; an RT of class
//! `C` gets a usage `clique = C` for every clique containing `C`. Two RTs
//! whose classes conflict then always disagree on at least one artificial
//! resource, so the scheduler can never pack them into one instruction.
//!
//! Correctness does not depend on which cover is chosen — "any clique cover
//! will lead to a valid schedule" — but the number of cliques controls how
//! many artificial resources each RT carries and therefore scheduler
//! run-time. Three strategies with different cost/quality trade-offs are
//! provided:
//!
//! * [`per_edge_clique_cover`] — one 2-clique per edge; trivially correct,
//!   largest cover (the baseline of experiment E8).
//! * [`greedy_edge_clique_cover`] — extends each uncovered edge to a maximal
//!   clique; near-minimal in practice, linear-ish cost.
//! * [`minimum_edge_clique_cover`] — exact minimum via branch and bound over
//!   maximal cliques; exponential, intended for graphs of tens of nodes
//!   (conflict graphs are small: one node per RT class).
//!
//! # Implementation notes
//!
//! Covered edges are tracked as **bit masks**, not boolean vectors: the
//! greedy cover keeps a packed covered-adjacency matrix (one row of
//! `⌈n/64⌉` words per node) and grows each clique by word-parallel
//! intersection of adjacency rows; the exact cover indexes edges and works
//! on packed per-clique edge masks, so "which edges does this clique newly
//! cover" is an AND-NOT over a handful of words instead of an O(|E|)
//! `contains` scan. The pre-bitset greedy is retained as
//! [`crate::naive::naive_greedy_edge_clique_cover`] for testing/benches.

use crate::bitset::{words_for, Bitset, Ones};
use crate::cliques::maximal_cliques;
use crate::UndirectedGraph;

/// Returns the trivial cover with one two-node clique per edge.
///
/// This is the worst valid cover and serves as the ablation baseline: it
/// maximises the number of artificial resources.
pub fn per_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    g.edges().map(|(a, b)| vec![a, b]).collect()
}

/// Greedy cover: repeatedly takes an uncovered edge and extends it to a
/// maximal clique, until all edges are covered.
///
/// Every returned clique is maximal in `g`. The cover size is at most the
/// number of edges and usually far smaller.
pub fn greedy_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    let stride = words_for(n);
    let mut cover: Vec<Vec<usize>> = Vec::new();
    // Packed covered-adjacency matrix: bit b of row a ⇔ edge {a,b} covered.
    let mut covered = vec![0u64; n * stride];
    let mut cand = Bitset::new(n);
    let mut clique: Vec<usize> = Vec::with_capacity(n);
    for a in 0..n {
        // Uncovered incident edges {a, b} with b > a, straight off the rows.
        loop {
            let row = g.neighbors_mask(a);
            let cov = &covered[a * stride..(a + 1) * stride];
            let b = match Ones::new(row).find(|&b| b > a && cov[b / 64] & (1 << (b % 64)) == 0) {
                Some(b) => b,
                None => break,
            };
            // Grow {a, b} to a maximal clique: candidates are the common
            // neighbourhood, shrunk word-parallel as members join.
            clique.clear();
            clique.push(a);
            clique.push(b);
            cand.copy_from_words(g.neighbors_mask(a));
            cand.intersect_words(g.neighbors_mask(b));
            while let Some(v) = cand.take_first() {
                clique.push(v);
                cand.intersect_words(g.neighbors_mask(v));
            }
            clique.sort_unstable();
            // Mark all clique-internal edges covered: OR the clique's node
            // mask into every member's covered row.
            cand.clear();
            for &u in &clique {
                cand.insert(u);
            }
            for &u in &clique {
                let row = &mut covered[u * stride..(u + 1) * stride];
                for (cw, &mw) in row.iter_mut().zip(cand.words()) {
                    *cw |= mw;
                }
            }
            cover.push(clique.clone());
        }
    }
    cover
}

/// Exact minimum edge clique cover via branch and bound over maximal
/// cliques.
///
/// An optimal cover always exists that uses only maximal cliques (any
/// non-maximal clique in a cover can be extended without uncovering
/// anything), so the search branches on which maximal clique covers the
/// first yet-uncovered edge. Covered-edge state is a packed bit mask over
/// edge indices; each candidate clique carries a precomputed edge mask, so
/// branching updates are word-parallel and undo is a masked AND.
///
/// Worst-case exponential; fine for the conflict graphs of real instruction
/// sets (≤ a few dozen RT classes). For larger graphs use
/// [`greedy_edge_clique_cover`].
pub fn minimum_edge_clique_cover(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    if edges.is_empty() {
        return Vec::new();
    }
    let n = g.node_count();
    // Edge index lookup: edge_idx[a * n + b] for both orientations.
    let mut edge_idx = vec![usize::MAX; n * n];
    for (i, &(a, b)) in edges.iter().enumerate() {
        edge_idx[a * n + b] = i;
        edge_idx[b * n + a] = i;
    }
    let cliques = maximal_cliques(g);
    // Per-clique packed edge mask.
    let clique_edges: Vec<Bitset> = cliques
        .iter()
        .map(|c| {
            let mut mask = Bitset::new(edges.len());
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    mask.insert(edge_idx[u * n + v]);
                }
            }
            mask
        })
        .collect();
    // Per-edge candidate cliques (those whose mask contains the edge).
    let candidates: Vec<Vec<usize>> = (0..edges.len())
        .map(|e| {
            (0..cliques.len())
                .filter(|&ci| clique_edges[ci].contains(e))
                .collect()
        })
        .collect();

    let mut best: Vec<Vec<usize>> = greedy_edge_clique_cover(g);
    let mut covered = Bitset::new(edges.len());
    let mut chosen: Vec<usize> = Vec::new();
    // Per-depth undo masks ("edges this clique newly covered"), allocated
    // once per depth instead of once per search node.
    let mut undo_pool: Vec<Vec<u64>> = Vec::new();
    let total = edges.len();

    #[allow(clippy::too_many_arguments)]
    fn search(
        cliques: &[Vec<usize>],
        clique_edges: &[Bitset],
        candidates: &[Vec<usize>],
        covered: &mut Bitset,
        covered_count: usize,
        total: usize,
        chosen: &mut Vec<usize>,
        undo_pool: &mut Vec<Vec<u64>>,
        best: &mut Vec<Vec<usize>>,
    ) {
        if covered_count == total {
            if chosen.len() < best.len() {
                *best = chosen.iter().map(|&i| cliques[i].clone()).collect();
            }
            return;
        }
        // Completing from an incomplete state takes at least one more
        // clique; prune only then (checking completeness first, or a cover
        // exactly one clique smaller than the incumbent would be pruned
        // instead of recorded).
        if chosen.len() + 1 >= best.len() {
            return; // cannot improve
        }
        // First uncovered edge: first zero bit of the covered mask.
        let first_uncovered = covered
            .words()
            .iter()
            .enumerate()
            .find_map(|(w, &word)| {
                let free = !word;
                let bit = w * 64 + free.trailing_zeros() as usize;
                (free != 0 && bit < total).then_some(bit)
            })
            .expect("covered_count < total implies an uncovered edge");
        let depth = chosen.len();
        if undo_pool.len() <= depth {
            undo_pool.push(vec![0u64; covered.words().len()]);
        }
        for &ci in &candidates[first_uncovered] {
            // newly = clique edges not yet covered (word-parallel AND-NOT),
            // into this depth's reusable undo mask.
            let mask = &clique_edges[ci];
            let mut newly = 0usize;
            for ((u, &m), &c) in undo_pool[depth]
                .iter_mut()
                .zip(mask.words())
                .zip(covered.words())
            {
                *u = m & !c;
                newly += u.count_ones() as usize;
            }
            covered.union_with(mask);
            chosen.push(ci);
            search(
                cliques,
                clique_edges,
                candidates,
                covered,
                covered_count + newly,
                total,
                chosen,
                undo_pool,
                best,
            );
            chosen.pop();
            // Undo: clear exactly the bits this clique newly covered.
            for (c, &w) in covered.words_mut().iter_mut().zip(&undo_pool[depth]) {
                *c &= !w;
            }
        }
    }

    search(
        &cliques,
        &clique_edges,
        &candidates,
        &mut covered,
        0,
        total,
        &mut chosen,
        &mut undo_pool,
        &mut best,
    );
    best
}

/// Checks that `cover` is a valid edge clique cover of `g`: every member is
/// a clique of `g` and every edge of `g` is inside at least one member.
///
/// Returns the first violation found, or `Ok(())`.
pub fn validate_cover(g: &UndirectedGraph, cover: &[Vec<usize>]) -> Result<(), CoverError> {
    for (i, c) in cover.iter().enumerate() {
        if !g.is_clique(c) {
            return Err(CoverError::NotAClique { index: i });
        }
    }
    for (a, b) in g.edges() {
        if !cover.iter().any(|c| c.contains(&a) && c.contains(&b)) {
            return Err(CoverError::EdgeUncovered { a, b });
        }
    }
    Ok(())
}

/// Violation found by [`validate_cover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverError {
    /// `cover[index]` is not a clique of the graph.
    NotAClique {
        /// Index of the offending set within the cover.
        index: usize,
    },
    /// Edge `{a, b}` is not contained in any clique of the cover.
    EdgeUncovered {
        /// Lower endpoint.
        a: usize,
        /// Higher endpoint.
        b: usize,
    },
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::NotAClique { index } => {
                write!(f, "cover member {index} is not a clique")
            }
            CoverError::EdgeUncovered { a, b } => {
                write!(f, "edge {a}-{b} is not covered by any clique")
            }
        }
    }
}

impl std::error::Error for CoverError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    fn paper_conflict_graph() -> UndirectedGraph {
        // S=0,T=1,U=2,V=3,X=4,Y=5 (paper figure 6).
        graph(
            6,
            &[
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
            ],
        )
    }

    #[test]
    fn per_edge_cover_is_valid() {
        let g = paper_conflict_graph();
        let cover = per_edge_clique_cover(&g);
        assert_eq!(cover.len(), 10);
        validate_cover(&g, &cover).unwrap();
    }

    #[test]
    fn greedy_cover_is_valid_and_smaller() {
        let g = paper_conflict_graph();
        let cover = greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
        assert!(cover.len() < 10, "greedy should beat per-edge: {cover:?}");
    }

    #[test]
    fn greedy_cover_cliques_are_maximal() {
        let g = paper_conflict_graph();
        for c in greedy_edge_clique_cover(&g) {
            assert!(g.is_clique(&c));
            for v in 0..g.node_count() {
                if !c.contains(&v) {
                    assert!(!c.iter().all(|&u| g.has_edge(u, v)));
                }
            }
        }
    }

    #[test]
    fn paper_cover_size_is_six() {
        // The paper lists a cover of size 6:
        // {S,X},{S,Y},{T,U,Y},{T,V,X},{U,X},{V,Y}. The minimum cover should
        // be no larger.
        let g = paper_conflict_graph();
        let paper_cover = vec![
            vec![0, 4],
            vec![0, 5],
            vec![1, 2, 5],
            vec![1, 3, 4],
            vec![2, 4],
            vec![3, 5],
        ];
        validate_cover(&g, &paper_cover).unwrap();
        let min = minimum_edge_clique_cover(&g);
        validate_cover(&g, &min).unwrap();
        assert!(min.len() <= 6, "minimum {:?} larger than paper's 6", min);
    }

    #[test]
    fn minimum_cover_of_triangle_is_one_clique() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        let min = minimum_edge_clique_cover(&g);
        assert_eq!(min, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn minimum_cover_empty_graph() {
        let g = UndirectedGraph::new(4);
        assert!(minimum_edge_clique_cover(&g).is_empty());
        assert!(greedy_edge_clique_cover(&g).is_empty());
        assert!(per_edge_clique_cover(&g).is_empty());
    }

    #[test]
    fn validate_rejects_non_clique() {
        let g = graph(3, &[(0, 1)]);
        let bad = vec![vec![0, 1, 2]];
        assert_eq!(
            validate_cover(&g, &bad),
            Err(CoverError::NotAClique { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_uncovered_edge() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let bad = vec![vec![0, 1]];
        assert_eq!(
            validate_cover(&g, &bad),
            Err(CoverError::EdgeUncovered { a: 1, b: 2 })
        );
    }

    #[test]
    fn cover_error_display() {
        let e = CoverError::EdgeUncovered { a: 1, b: 2 };
        assert_eq!(e.to_string(), "edge 1-2 is not covered by any clique");
        let e = CoverError::NotAClique { index: 3 };
        assert_eq!(e.to_string(), "cover member 3 is not a clique");
    }

    #[test]
    fn greedy_on_star_graph() {
        // Star K1,4: centre 0. Every edge is its own maximal clique.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cover = greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
        assert_eq!(cover.len(), 4);
    }

    #[test]
    fn minimum_cover_not_pruned_at_incumbent_minus_one() {
        // Regression: a complete cover exactly one clique smaller than the
        // greedy incumbent used to be pruned by the cannot-improve check
        // before the completeness check ran. On this graph greedy finds 6
        // cliques but the true minimum is 5 (verified by brute force over
        // maximal-clique subsets).
        let g = graph(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
                (2, 3),
                (2, 6),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        );
        assert_eq!(greedy_edge_clique_cover(&g).len(), 6);
        let min = minimum_edge_clique_cover(&g);
        validate_cover(&g, &min).unwrap();
        assert_eq!(min.len(), 5, "exact minimum must beat greedy here: {min:?}");
    }

    #[test]
    fn minimum_cover_of_two_triangles_sharing_a_vertex() {
        let g = graph(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let min = minimum_edge_clique_cover(&g);
        validate_cover(&g, &min).unwrap();
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn greedy_covers_multiword_graph() {
        // 100 nodes: a chain plus a K6 spanning a word boundary (60..66).
        let mut g = UndirectedGraph::new(100);
        for i in 0..99 {
            g.add_edge(i, i + 1);
        }
        for a in 60..66 {
            for b in (a + 1)..66 {
                g.add_edge(a, b);
            }
        }
        let cover = greedy_edge_clique_cover(&g);
        validate_cover(&g, &cover).unwrap();
        assert!(cover.iter().any(|c| c.len() == 6), "K6 found as one clique");
    }
}
