//! Directed-acyclic-graph utilities for dependence analysis.
//!
//! The scheduler builds a dependence graph over RTs with weighted edges
//! (latencies) and needs topological orders, longest paths (critical path),
//! and ASAP/ALAP times under a cycle budget. Those primitives live here so
//! they can be tested in isolation.

use std::collections::VecDeque;

/// A directed graph with `i64` edge weights, expected to be acyclic for the
/// analyses below.
///
/// Nodes are indices `0..n`. Parallel edges are merged keeping the maximum
/// weight (the binding constraint for scheduling).
///
/// # Example
///
/// ```
/// use dspcc_graph::dag::Dag;
///
/// let mut d = Dag::new(3);
/// d.add_edge(0, 1, 1);
/// d.add_edge(1, 2, 2);
/// assert_eq!(d.topological_order().unwrap(), vec![0, 1, 2]);
/// assert_eq!(d.longest_path_lengths(), vec![0, 1, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Dag {
    n: usize,
    succ: Vec<Vec<(usize, i64)>>,
    pred: Vec<Vec<(usize, i64)>>,
}

/// Error returned when a cycle is found where a DAG was required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes known to participate in (or be downstream of) a cycle.
    pub stuck_nodes: Vec<usize>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a cycle through nodes {:?}",
            self.stuck_nodes
        )
    }
}

impl std::error::Error for CycleError {}

impl Dag {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dag {
            n,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// Adds edge `from → to` with `weight`. If the edge exists, keeps the
    /// larger weight.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: i64) {
        assert!(from < self.n && to < self.n, "node index out of range");
        if let Some(e) = self.succ[from].iter_mut().find(|(t, _)| *t == to) {
            if weight > e.1 {
                e.1 = weight;
                let p = self.pred[to]
                    .iter_mut()
                    .find(|(f, _)| *f == from)
                    .expect("pred mirrors succ");
                p.1 = weight;
            }
            return;
        }
        self.succ[from].push((to, weight));
        self.pred[to].push((from, weight));
    }

    /// Successors of `v` as `(node, weight)` pairs.
    pub fn successors(&self, v: usize) -> &[(usize, i64)] {
        &self.succ[v]
    }

    /// Predecessors of `v` as `(node, weight)` pairs.
    pub fn predecessors(&self, v: usize) -> &[(usize, i64)] {
        &self.pred[v]
    }

    /// Kahn topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph has a cycle; the error lists the
    /// nodes that could not be ordered.
    pub fn topological_order(&self) -> Result<Vec<usize>, CycleError> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.pred[v].len()).collect();
        let mut queue: VecDeque<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(s, _) in &self.succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(CycleError {
                stuck_nodes: (0..self.n).filter(|&v| indeg[v] > 0).collect(),
            })
        }
    }

    /// Longest path length from any source to each node (source nodes get
    /// 0). This is the ASAP time when edge weights are latencies.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn longest_path_lengths(&self) -> Vec<i64> {
        let order = self.topological_order().expect("graph must be acyclic");
        let mut dist = vec![0i64; self.n];
        for &v in &order {
            for &(s, w) in &self.succ[v] {
                dist[s] = dist[s].max(dist[v] + w);
            }
        }
        dist
    }

    /// ASAP times: earliest start of each node with all sources at 0.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn asap(&self) -> Vec<i64> {
        self.longest_path_lengths()
    }

    /// ALAP times: latest start of each node such that every node finishes
    /// within `deadline` (sinks start no later than `deadline`).
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn alap(&self, deadline: i64) -> Vec<i64> {
        let order = self.topological_order().expect("graph must be acyclic");
        let mut late = vec![deadline; self.n];
        for &v in order.iter().rev() {
            for &(s, w) in &self.succ[v] {
                late[v] = late[v].min(late[s] - w);
            }
        }
        late
    }

    /// Length of the critical (longest) path over the whole graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has a cycle.
    pub fn critical_path_length(&self) -> i64 {
        self.longest_path_lengths().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 → 1 → 3, 0 → 2 → 3 with weights 1 except 2→3 weight 3.
        let mut d = Dag::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 3);
        d
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order().unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_is_detected() {
        let mut d = Dag::new(3);
        d.add_edge(0, 1, 1);
        d.add_edge(1, 2, 1);
        d.add_edge(2, 0, 1);
        let err = d.topological_order().unwrap_err();
        assert_eq!(err.stuck_nodes.len(), 3);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn longest_paths_in_diamond() {
        let d = diamond();
        assert_eq!(d.longest_path_lengths(), vec![0, 1, 1, 4]);
        assert_eq!(d.critical_path_length(), 4);
    }

    #[test]
    fn asap_alap_bracket_schedule() {
        let d = diamond();
        let asap = d.asap();
        let alap = d.alap(10);
        for v in 0..4 {
            assert!(asap[v] <= alap[v], "node {v}: asap > alap");
        }
        assert_eq!(alap, vec![6, 9, 7, 10]);
    }

    #[test]
    fn alap_with_tight_deadline_equals_asap_on_critical_path() {
        let d = diamond();
        let asap = d.asap();
        let alap = d.alap(d.critical_path_length());
        // Critical path 0 → 2 → 3 has zero slack.
        assert_eq!(asap[0], alap[0]);
        assert_eq!(asap[2], alap[2]);
        assert_eq!(asap[3], alap[3]);
        // Node 1 has slack.
        assert!(alap[1] > asap[1]);
    }

    #[test]
    fn parallel_edge_keeps_max_weight() {
        let mut d = Dag::new(2);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 1, 5);
        d.add_edge(0, 1, 3);
        assert_eq!(d.edge_count(), 1);
        assert_eq!(d.longest_path_lengths(), vec![0, 5]);
        assert_eq!(d.predecessors(1), &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let d = Dag::new(0);
        assert!(d.topological_order().unwrap().is_empty());
        assert_eq!(d.critical_path_length(), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_times() {
        let d = Dag::new(3);
        assert_eq!(d.asap(), vec![0, 0, 0]);
        assert_eq!(d.alap(7), vec![7, 7, 7]);
    }
}
