//! Ready-made applications.
//!
//! [`audio_application`] reconstructs the figure-7 stereo audio processor.
//! The paper publishes the treble section verbatim and, through figure 9,
//! the complete per-frame resource mix: ~58 multiplications, ~58 ALU
//! operations, ~58 RAM accesses and 59 ACU address computations, two input
//! samples (IPB at 3%) and four output samples per channel (OPB₁/OPB₂ at
//! 6% each) inside the 64-cycle budget (2.8 MHz clock / 44 kHz sample
//! rate). This reconstruction reproduces that mix *exactly* per channel:
//!
//! | unit | ops/frame (stereo) |
//! |------|--------------------|
//! | MULT | 58 |
//! | ALU  | 58 |
//! | RAM  | 58 (46 taps + 12 writes) |
//! | ACU  | 59 (58 accesses + frame pointer) |
//! | ROM  | 58 coefficient fetches |
//! | IPB  | 2 |
//! | OPB₁/OPB₂ | 4 + 4 |
//!
//! Per channel: the paper's treble shelf (3 mult / 3 ALU / 3 taps +
//! 1 write), four biquad sections in frame-decoupled direct form I
//! (5 mult / 4 ALU / 5 taps + 1 write each), and a four-way output matrix
//! (6 mult / 10 ALU) feeding woofer/mid/tweeter/sub taps — the `out0..3`
//! of figure 7, identical for left & right.

use std::fmt::Write as _;

/// Generates the stereo audio application source (figure 7).
///
/// # Example
///
/// ```
/// use dspcc::apps::audio_application;
/// use dspcc::dfg::{parse, Dfg};
///
/// let dfg = Dfg::build(&parse(&audio_application())?)?;
/// let census = dfg.census();
/// assert_eq!(census.mults, 58);
/// assert_eq!(census.alu_ops, 58);
/// assert_eq!(census.taps + census.signal_writes, 56); // +2 input stores = 58
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn audio_application() -> String {
    let mut src = String::new();
    let _ = writeln!(src, "/* Figure-7 stereo audio application. */");
    // Interleaved outputs: even DFG ports route to OPB_1 (left), odd to
    // OPB_2 (right).
    let _ = writeln!(src, "input u_l; input u_r;");
    for band in 0..4 {
        let _ = writeln!(src, "output out{band}_l; output out{band}_r;");
    }
    for ch in ["l", "r"] {
        let _ = writeln!(src, "signal v_{ch};");
        for stage in 1..=4 {
            let _ = writeln!(src, "signal y{stage}_{ch};");
        }
    }
    // Distinct coefficient values per channel keep every ROM fetch
    // separate (58 fetches, like the paper's 92% ROM row).
    for (ci, ch) in ["l", "r"].iter().enumerate() {
        let s = if ci == 0 { 1.0 } else { -1.0 };
        let _ = writeln!(src, "/* --- channel {ch}: treble shelf coefficients --- */");
        let _ = writeln!(src, "coeff d1_{ch} = {:.6};", s * 0.250 + ci as f64 * 0.001);
        let _ = writeln!(src, "coeff d2_{ch} = {:.6};", s * 0.125 + ci as f64 * 0.002);
        let _ = writeln!(
            src,
            "coeff e1_{ch} = {:.6};",
            -s * 0.500 + ci as f64 * 0.003
        );
        for stage in 1..=4 {
            let base = 0.02 * stage as f64 + 0.005 * ci as f64;
            let _ = writeln!(src, "/* biquad {stage}, channel {ch} */");
            let _ = writeln!(src, "coeff b0_{stage}_{ch} = {:.6};", 0.30 + base);
            let _ = writeln!(src, "coeff b1_{stage}_{ch} = {:.6};", 0.15 + base / 2.0);
            let _ = writeln!(src, "coeff b2_{stage}_{ch} = {:.6};", 0.05 + base / 3.0);
            let _ = writeln!(src, "coeff a1_{stage}_{ch} = {:.6};", 0.20 - base);
            let _ = writeln!(src, "coeff a2_{stage}_{ch} = {:.6};", -0.10 + base / 4.0);
        }
        for band in 0..4 {
            let base = 0.05 * band as f64 + 0.01 * ci as f64;
            let _ = writeln!(src, "coeff vol{band}_{ch} = {:.6};", 0.60 - base);
            if band < 2 {
                let _ = writeln!(src, "coeff mix{band}_{ch} = {:.6};", 0.20 + base);
            }
        }
    }

    for ch in ["l", "r"] {
        let _ = writeln!(src, "\n/* ===== channel {ch} ===== */");
        // The paper's treble section, verbatim structure (section 7).
        let _ = writeln!(src, "/* Treble section */");
        let _ = writeln!(src, "x0_{ch} := u_{ch}@2; /* U delayed over 2 frames */");
        let _ = writeln!(src, "m_{ch}  := mlt(d2_{ch}, x0_{ch});");
        let _ = writeln!(src, "a_{ch}  := pass(m_{ch});");
        let _ = writeln!(src, "x2_{ch} := v_{ch}@1; /* V delayed over 1 frame */");
        let _ = writeln!(src, "m_{ch}  := mlt(e1_{ch}, x2_{ch});");
        let _ = writeln!(src, "a_{ch}  := add(m_{ch}, a_{ch});");
        let _ = writeln!(src, "x1_{ch} := u_{ch}@1;");
        let _ = writeln!(src, "m_{ch}  := mlt(d1_{ch}, x1_{ch});");
        let _ = writeln!(src, "rd_{ch} := add_clip(m_{ch}, a_{ch});");
        let _ = writeln!(src, "v_{ch}  = rd_{ch};");
        // Four biquads in frame-decoupled direct form I: stage i filters
        // the delayed output of stage i−1 (v for stage 1), so all stages
        // schedule in parallel within the frame.
        for stage in 1..=4u32 {
            let x = if stage == 1 {
                format!("v_{ch}")
            } else {
                format!("y{}_{ch}", stage - 1)
            };
            let y = format!("y{stage}_{ch}");
            let _ = writeln!(src, "/* biquad {stage} */");
            let _ = writeln!(src, "p0_{stage}_{ch} := mlt(b0_{stage}_{ch}, {x}@1);");
            let _ = writeln!(src, "p1_{stage}_{ch} := mlt(b1_{stage}_{ch}, {x}@2);");
            let _ = writeln!(src, "p2_{stage}_{ch} := mlt(b2_{stage}_{ch}, {x}@3);");
            let _ = writeln!(src, "q1_{stage}_{ch} := mlt(a1_{stage}_{ch}, {y}@1);");
            let _ = writeln!(src, "q2_{stage}_{ch} := mlt(a2_{stage}_{ch}, {y}@2);");
            let _ = writeln!(
                src,
                "s0_{stage}_{ch} := add(p0_{stage}_{ch}, p1_{stage}_{ch});"
            );
            let _ = writeln!(
                src,
                "s1_{stage}_{ch} := add(p2_{stage}_{ch}, q1_{stage}_{ch});"
            );
            let _ = writeln!(
                src,
                "s2_{stage}_{ch} := add(s0_{stage}_{ch}, s1_{stage}_{ch});"
            );
            // Every stage's store is clip-conditioned: the accumulate
            // finishes with a plain add and the stored value saturates on
            // its way to RAM.
            let _ = writeln!(
                src,
                "t_{stage}_{ch} := add(s2_{stage}_{ch}, q2_{stage}_{ch});"
            );
            let _ = writeln!(src, "{y} = pass_clip(t_{stage}_{ch});");
        }
        // Output matrix: four bands from the cascade's taps (out0..out3 of
        // figure 7), volume-scaled and clipped.
        // Each band mixes two *adjacent* stages of the cascade with the
        // shallowest possible chains (mult, add, clipped write): out_i
        // completes as soon as stages i-1 and i do, spreading the
        // output-port writes through the schedule like figure 9's OPB rows.
        let _ = writeln!(src, "/* output matrix */");
        let _ = writeln!(src, "ma_{ch} := mlt(vol0_{ch}, rd_{ch});");
        let _ = writeln!(src, "mb_{ch} := mlt(mix0_{ch}, y1_{ch});");
        let _ = writeln!(src, "g0_{ch} := add(ma_{ch}, mb_{ch});");
        let _ = writeln!(src, "out0_{ch} = pass_clip(g0_{ch});");
        let _ = writeln!(src, "mc_{ch} := mlt(vol1_{ch}, y1_{ch});");
        let _ = writeln!(src, "md_{ch} := mlt(mix1_{ch}, y2_{ch});");
        let _ = writeln!(src, "g1_{ch} := add(mc_{ch}, md_{ch});");
        let _ = writeln!(src, "out1_{ch} = pass_clip(g1_{ch});");
        let _ = writeln!(src, "me_{ch} := mlt(vol2_{ch}, y2_{ch});");
        let _ = writeln!(src, "out2_{ch} = add_clip(me_{ch}, y3_{ch});");
        let _ = writeln!(src, "mf_{ch} := mlt(vol3_{ch}, y3_{ch});");
        let _ = writeln!(src, "out3_{ch} = add_clip(mf_{ch}, y4_{ch});");
    }
    src
}

/// Generates an `n`-tap FIR filter (direct form), the classic scaling
/// workload for benches: `n` multiplies, `n−1` adds, `n−1` taps.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn fir(n: usize) -> String {
    assert!(n > 0, "FIR needs at least one tap");
    let mut src = String::new();
    let _ = writeln!(src, "input u; output y;");
    for i in 0..n {
        let _ = writeln!(src, "coeff h{i} = {:.6};", 0.9 / (i + 1) as f64);
    }
    let _ = writeln!(src, "acc0 := mlt(h0, u);");
    for i in 1..n {
        let _ = writeln!(src, "m{i} := mlt(h{i}, u@{i});");
        let _ = writeln!(src, "acc{i} := add(acc{}, m{i});", i - 1);
    }
    let _ = writeln!(src, "y = pass_clip(acc{});", n - 1);
    src
}

/// Generates a cascade of `n` frame-decoupled biquads, a pure feedback
/// workload for folding and budget-sweep experiments.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn biquad_cascade(n: usize) -> String {
    assert!(n > 0, "cascade needs at least one section");
    let mut src = String::new();
    let _ = writeln!(src, "input u; output y;");
    for i in 0..n {
        let _ = writeln!(src, "signal s{i};");
        let _ = writeln!(src, "coeff cb_{i} = {:.6};", 0.5 - 0.01 * i as f64);
        let _ = writeln!(src, "coeff ca_{i} = {:.6};", 0.25 + 0.01 * i as f64);
    }
    for i in 0..n {
        let input = if i == 0 {
            "u".to_owned()
        } else {
            format!("s{}@1", i - 1)
        };
        let _ = writeln!(
            src,
            "s{i} = add_clip(mlt(cb_{i}, {input}), mlt(ca_{i}, s{i}@1));"
        );
    }
    let _ = writeln!(src, "y = pass_clip(s{}@1);", n - 1);
    src
}

/// Generates a tap-free sum-of-products: `n` independent `mlt(c_i, u)`
/// terms reduced by a balanced add tree. Exercises MULT/ALU/ROM
/// parallelism without needing RAM or an ACU (for cores without delay
/// lines).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sum_of_products(n: usize) -> String {
    assert!(n > 0, "need at least one product");
    let mut src = String::new();
    let _ = writeln!(src, "input u; output y;");
    for i in 0..n {
        let _ = writeln!(src, "coeff c{i} = {:.6};", 0.8 / (i + 1) as f64);
    }
    for i in 0..n {
        let _ = writeln!(src, "m{i} := mlt(c{i}, u);");
    }
    // Balanced reduction tree.
    let mut layer: Vec<String> = (0..n).map(|i| format!("m{i}")).collect();
    let mut tmp = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let name = format!("t{tmp}");
                tmp += 1;
                let _ = writeln!(src, "{name} := add({}, {});", pair[0], pair[1]);
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    let _ = writeln!(src, "y = pass_clip({});", layer[0]);
    src
}

/// Generates an ALU-only workload: `n` terms `add(u, k_i)` reduced by a
/// balanced tree — for architectures with adders and a program-constant
/// unit but no multiplier or memory (e.g. the intermediate-architecture
/// core of the merging experiments).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn add_tree(n: usize) -> String {
    assert!(n > 0, "need at least one term");
    let mut src = String::new();
    let _ = writeln!(src, "input u; output y;");
    for i in 0..n {
        let _ = writeln!(src, "const k{i} = {:.6};", 0.01 * (i + 1) as f64);
    }
    for i in 0..n {
        let _ = writeln!(src, "a{i} := add(u, k{i});");
    }
    let mut layer: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let mut tmp = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let name = format!("b{tmp}");
                tmp += 1;
                let _ = writeln!(src, "{name} := add({}, {});", pair[0], pair[1]);
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    let _ = writeln!(src, "y = pass_clip({});", layer[0]);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_dfg::{parse, Dfg};

    #[test]
    fn audio_application_census_matches_figure_9_mix() {
        let dfg = Dfg::build(&parse(&audio_application()).unwrap()).unwrap();
        let c = dfg.census();
        assert_eq!(c.mults, 58, "{c}");
        assert_eq!(c.alu_ops, 58, "{c}");
        assert_eq!(c.taps, 46, "{c}");
        assert_eq!(c.signal_writes, 10, "{c}");
        // RAM accesses: 46 taps + 10 signal writes + 2 implicit input
        // stores (u_l, u_r are tapped, so RT generation stores each
        // sample) = 58, the paper's 92% RAM row.
        let tapped_inputs = dfg
            .signals()
            .iter()
            .filter(|s| s.is_input && s.max_tap_depth > 0)
            .count();
        assert_eq!(c.taps + c.signal_writes + tapped_inputs, 58, "{c}");
        assert_eq!(c.coeff_fetches, 58, "{c}");
        assert_eq!(c.outputs, 8, "{c}");
        // The inputs are consumed via taps (u@1, u@2) only.
        assert_eq!(dfg.input_ports().len(), 2);
    }

    #[test]
    fn audio_application_delay_depth_fits_power_of_two_regions() {
        let dfg = Dfg::build(&parse(&audio_application()).unwrap()).unwrap();
        let max_depth = dfg.signals().iter().map(|s| s.max_tap_depth).max().unwrap();
        assert_eq!(max_depth, 3); // region size 4
        let tapped = dfg.signals().iter().filter(|s| s.max_tap_depth > 0).count();
        assert_eq!(tapped, 12); // 2×(u, v, y1..y4)
                                // 12 regions × 4 words = 48 ≤ the audio core's 64-word RAM.
    }

    #[test]
    fn fir_census() {
        let dfg = Dfg::build(&parse(&fir(8)).unwrap()).unwrap();
        let c = dfg.census();
        assert_eq!(c.mults, 8);
        assert_eq!(c.alu_ops, 8); // 7 adds + pass_clip
        assert_eq!(c.taps, 7);
    }

    #[test]
    fn biquad_cascade_census() {
        let dfg = Dfg::build(&parse(&biquad_cascade(5)).unwrap()).unwrap();
        let c = dfg.census();
        assert_eq!(c.mults, 10);
        assert_eq!(c.signal_writes, 5);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn fir_zero_rejected() {
        fir(0);
    }
}
