//! HW/SW co-design Pareto search over generated cores — the paper's
//! in-house workflow as one deterministic sweep.
//!
//! The paper tunes an in-house core to its application set: specialize a
//! core per application, fold the specialized cores together, and trade
//! duplicated resources back for silicon until the cycle budget breaks.
//! [`Codesign`] automates that loop over the seeded architecture axis:
//!
//! * **Candidates** — seeded generated cores
//!   ([`crate::cores::generated_core`]), cross-core *unions* of two
//!   seeds ([`crate::cores::merged_core`] /
//!   [`dspcc_arch::merge::union`]), and, for every base candidate,
//!   *merge moves*: an intra-core [`MergePlan`] folding a secondary
//!   ALU's or MULT's operand files and output bus into the primary's,
//!   with the instruction set **re-derived** on the merged datapath.
//! * **Scoring** — every `(candidate, budget)` point compiles the whole
//!   app corpus through **one shared [`CompileSession`]** under the
//!   fleet's per-cell fuel cap and `catch_unwind` containment, and every
//!   compiled cell is pinned **bit-exact against the
//!   `dspcc_dfg::Interpreter` golden model** ([`conform_cell`]). A point
//!   is feasible only if every app compiled *and* verified — so by
//!   construction, nothing unverified can appear on the frontier.
//! * **Frontier** — feasible points are ranked on (total corpus cycles,
//!   [`HwCost::scalar`]); the non-dominated set is the Pareto frontier.
//!
//! Determinism: candidates, moves, stimulus, and compilation are pure
//! functions of the seed list, and results land in pre-indexed slots —
//! [`Codesign::run`] returns the same [`CodesignReport`] for every
//! worker-thread count (same slot discipline as [`crate::explore`] and
//! [`crate::conform`], pinned by `tests/codesign.rs`). A diverging cell
//! is a [`PointOutcome::Mismatch`] — a compiler bug by construction —
//! and fails the sweep's zero-mismatch gate, never silently.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dspcc_arch::merge::MergePlan;
use dspcc_arch::{Datapath, Fnv64};
use dspcc_encode::FieldLayout;
use dspcc_isa::derive_isa;

use crate::conform::{conform_cell, CellOutcome};
use crate::cores::{generated_core, merged_core};
use crate::pipeline::Core;
use crate::session::{CompileOptions, CompileSession};

/// The hardware-cost side of a design point, measured on the core
/// definition alone (no compilation needed).
///
/// The fields follow the ROADMAP's cost axes: unit counts, word width,
/// register-file/memory sizes, and the instruction-word width the
/// encoder's [`FieldLayout`] actually derives for the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCost {
    /// Operation units in the datapath.
    pub opus: u32,
    /// Buses in the datapath.
    pub buses: u32,
    /// Total multiplexer fan-in (write buses of every multi-bus RF).
    pub mux_inputs: u32,
    /// Data word width in bits.
    pub word_width: u32,
    /// Register bits: Σ register-file size × word width.
    pub rf_bits: u32,
    /// Memory bits: Σ RAM/ROM words × word width.
    pub mem_bits: u32,
    /// Instruction-word width in bits, from the encoder layout.
    pub iword_bits: u32,
    /// Control-store bits: instruction-word width × program depth.
    pub control_bits: u64,
}

impl HwCost {
    /// Measures `core`.
    pub fn of(core: &Core) -> HwCost {
        let dp = &core.datapath;
        let w = core.format.width();
        HwCost {
            opus: dp.opus().len() as u32,
            buses: dp.buses().len() as u32,
            mux_inputs: dp
                .register_files()
                .iter()
                .filter(|r| r.has_mux())
                .map(|r| r.write_buses().len() as u32)
                .sum(),
            word_width: w,
            rf_bits: dp.register_files().iter().map(|r| r.size() * w).sum(),
            mem_bits: dp.opus().iter().map(|o| o.memory_size() * w).sum(),
            iword_bits: FieldLayout::derive(dp, core.format).width(),
            control_bits: u64::from(FieldLayout::derive(dp, core.format).width())
                * u64::from(core.controller.program_depth()),
        }
    }

    /// The deterministic scalar used for Pareto ranking: storage bits
    /// (registers + memories + control store) plus structural weights
    /// for units, buses, and mux fan-in. The weights are documented in
    /// DESIGN.md; what matters for the search is that the scalar is a
    /// pure function of the core.
    pub fn scalar(&self) -> u64 {
        u64::from(self.rf_bits)
            + u64::from(self.mem_bits)
            + self.control_bits
            + 48 * u64::from(self.opus)
            + 24 * u64::from(self.buses)
            + 8 * u64::from(self.mux_inputs)
    }
}

/// How a candidate core was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateKind {
    /// One seeded generated core.
    Seed(u64),
    /// The structural union of two seeded cores.
    Union(u64, u64),
    /// A base candidate (by index) with an intra-core merge move
    /// applied and the instruction set re-derived.
    Merged {
        /// Index of the base candidate in the report's candidate order.
        base: usize,
        /// The move's name (e.g. `fold_alu_1`).
        move_name: String,
    },
}

/// Metrics of a feasible (fully compiled *and* bit-exact-verified)
/// design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointMetrics {
    /// Time-loop cycles per corpus app, in corpus order.
    pub per_app_cycles: Vec<u32>,
    /// Total cycles across the corpus — the performance axis.
    pub total_cycles: u32,
    /// The hardware-cost breakdown.
    pub cost: HwCost,
    /// [`HwCost::scalar`] — the cost axis.
    pub score: u64,
    /// Whether any app's schedule came from a fuel-degraded search
    /// (still bit-exact).
    pub degraded: bool,
}

/// The verdict of one design point over the whole corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointOutcome {
    /// Every app compiled and verified bit-exact.
    Feasible(PointMetrics),
    /// The candidate core could not be constructed (union or merge-move
    /// failure) — stated reason, the merge machinery's typed errors.
    Unbuildable(String),
    /// Some app was rejected by the pipeline (first offender named) —
    /// designer feedback, not a bug.
    Infeasible {
        /// The first rejected app.
        app: String,
        /// The stage's stated reason.
        reason: String,
    },
    /// Some app's cell was quarantined (fuel exhaustion or contained
    /// panic) — the sweep continued.
    Quarantined {
        /// The first quarantined app.
        app: String,
        /// The quarantine message (carries a repro hint).
        reason: String,
    },
    /// Some app compiled but diverged from the golden model — a
    /// compiler bug by construction. Never eligible for the frontier,
    /// and [`CodesignReport::mismatches`] makes it impossible to miss.
    Mismatch {
        /// The diverging app.
        app: String,
        /// The divergence detail.
        detail: String,
    },
}

/// One design point: a candidate core under one budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignPoint {
    /// Candidate label (`gen_5`, `gen_5+gen_6`, `gen_5/fold_alu_1`…).
    pub label: String,
    /// How the candidate was obtained.
    pub kind: CandidateKind,
    /// Cycle budget of this point (`None` = controller cap only).
    pub budget: Option<u32>,
    /// The corpus verdict.
    pub outcome: PointOutcome,
}

impl DesignPoint {
    /// Whether the point is feasible (and therefore frontier-eligible).
    pub fn is_feasible(&self) -> bool {
        matches!(self.outcome, PointOutcome::Feasible(_))
    }
}

/// A seeded, deterministic co-design sweep.
///
/// # Example
///
/// ```no_run
/// use dspcc::codesign::Codesign;
///
/// let report = Codesign::new()
///     .seed_range(0..8)
///     .union_adjacent()
///     .app("fir8", dspcc::apps::fir(8))
///     .app("sop6", dspcc::apps::sum_of_products(6))
///     .run();
/// assert_eq!(report.mismatches().count(), 0, "{report}");
/// println!("{report}");
/// ```
#[derive(Debug, Clone)]
pub struct Codesign {
    seeds: Vec<u64>,
    union_pairs: Vec<(u64, u64)>,
    merge_moves: bool,
    apps: Vec<(String, String)>,
    budgets: Vec<Option<u32>>,
    frames: u32,
    threads: usize,
    options: CompileOptions,
}

impl Default for Codesign {
    fn default() -> Self {
        Codesign {
            seeds: Vec::new(),
            union_pairs: Vec::new(),
            merge_moves: true,
            apps: Vec::new(),
            budgets: vec![None],
            frames: 8,
            threads: 0,
            // The fleet's discipline: breadth over polish, parallelism at
            // the cell level, and a deterministic fuel cap so one
            // pathological point degrades or quarantines instead of
            // hanging the sweep.
            options: CompileOptions {
                restarts: 2,
                sched_threads: 1,
                fuel: Some(10_000),
                ..CompileOptions::default()
            },
        }
    }
}

impl Codesign {
    /// An empty sweep (no seeds, no apps).
    pub fn new() -> Self {
        Codesign::default()
    }

    /// Adds a contiguous seed block of base candidates.
    pub fn seed_range(mut self, range: std::ops::Range<u64>) -> Self {
        self.seeds.extend(range);
        self
    }

    /// Adds explicit base-candidate seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Adds one explicit cross-core union candidate.
    pub fn union_pair(mut self, a: u64, b: u64) -> Self {
        self.union_pairs.push((a, b));
        self
    }

    /// Adds a union candidate for every non-overlapping adjacent seed
    /// pair currently declared (`s0∪s1`, `s2∪s3`, …) — the cheap default
    /// way to put the cross-core move in play.
    pub fn union_adjacent(mut self) -> Self {
        let pairs: Vec<(u64, u64)> = self
            .seeds
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| (c[0], c[1]))
            .collect();
        self.union_pairs.extend(pairs);
        self
    }

    /// Whether to derive intra-core merge moves (fold a secondary ALU's
    /// or MULT's register files and bus into the primary's) from every
    /// base candidate (default `true`).
    pub fn merge_moves(mut self, on: bool) -> Self {
        self.merge_moves = on;
        self
    }

    /// Adds one corpus application.
    pub fn app(mut self, name: impl Into<String>, source: impl Into<String>) -> Self {
        self.apps.push((name.into(), source.into()));
        self
    }

    /// Sets the cycle budgets to sweep (`None` = controller cap only).
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = Option<u32>>) -> Self {
        self.budgets = budgets.into_iter().collect();
        assert!(
            !self.budgets.is_empty(),
            "budget dimension must be non-empty"
        );
        self
    }

    /// Frames verified bit-exact per (point, app) cell (default 8).
    pub fn frames(mut self, frames: u32) -> Self {
        self.frames = frames;
        self
    }

    /// Worker threads: `0` (default) one per available core, `1` serial.
    /// The report is identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell compile options (the point's budget is
    /// applied on top).
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    fn workers(&self, work: usize) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(work)
        .max(1)
    }

    /// Runs the sweep: build candidates, score every `(candidate,
    /// budget)` point on the corpus, and rank the feasible points.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no seeds and no union pairs, or no apps.
    pub fn run(&self) -> CodesignReport {
        assert!(
            !(self.seeds.is_empty() && self.union_pairs.is_empty()),
            "codesign needs at least one candidate seed"
        );
        assert!(!self.apps.is_empty(), "codesign needs at least one app");

        // Phase 1: base candidates (seeds, then unions), parallel slots.
        let base_specs: Vec<CandidateKind> = self
            .seeds
            .iter()
            .map(|&s| CandidateKind::Seed(s))
            .chain(
                self.union_pairs
                    .iter()
                    .map(|&(a, b)| CandidateKind::Union(a, b)),
            )
            .collect();
        let base_slots: Vec<Mutex<Option<Candidate>>> =
            base_specs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers(base_specs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = base_specs.get(i) else { break };
                    *base_slots[i].lock().unwrap() = Some(build_base(spec));
                });
            }
        });
        let mut candidates: Vec<Candidate> = base_slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("candidate built"))
            .collect();

        // Phase 2: merge moves of every buildable base, parallel slots.
        // The move list is a pure function of each base datapath, so the
        // candidate order never depends on worker timing.
        if self.merge_moves {
            let move_specs: Vec<(usize, String, MergePlan)> = candidates
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    c.core
                        .as_ref()
                        .ok()
                        .map(|core| (i, merge_moves_of(&core.datapath)))
                })
                .flat_map(|(i, moves)| {
                    moves
                        .into_iter()
                        .map(move |(name, plan)| (i, name, plan))
                        .collect::<Vec<_>>()
                })
                .collect();
            let move_slots: Vec<Mutex<Option<Candidate>>> =
                move_specs.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.workers(move_specs.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((base, name, plan)) = move_specs.get(i) else {
                            break;
                        };
                        *move_slots[i].lock().unwrap() =
                            Some(build_move(&candidates[*base], *base, name, plan));
                    });
                }
            });
            candidates.extend(
                move_slots
                    .into_iter()
                    .map(|slot| slot.into_inner().unwrap().expect("candidate built")),
            );
        }

        // Phase 3: score every (candidate × budget × app) cell through
        // one shared session, slot-indexed. `conform_cell` contains the
        // compile *and* the bit-exact differential check, so scoring and
        // conformance are one verdict.
        let points: Vec<(usize, Option<u32>)> = (0..candidates.len())
            .flat_map(|c| self.budgets.iter().map(move |&b| (c, b)))
            .collect();
        let cells: Vec<(usize, usize)> = (0..points.len())
            .flat_map(|p| (0..self.apps.len()).map(move |a| (p, a)))
            .collect();
        let session = CompileSession::new();
        let cell_slots: Vec<Mutex<Option<CellOutcome>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers(cells.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(p, a)) = cells.get(i) else { break };
                    let (cand_idx, budget) = points[p];
                    let candidate = &candidates[cand_idx];
                    let (app, source) = &self.apps[a];
                    let outcome = match &candidate.core {
                        Err(reason) => CellOutcome::Infeasible(reason.clone()),
                        Ok(core) => {
                            let options = CompileOptions {
                                budget,
                                ..self.options.clone()
                            };
                            let core = Arc::clone(core);
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                conform_cell(
                                    &session,
                                    &core,
                                    candidate.stim_seed,
                                    app,
                                    source,
                                    self.frames,
                                    &options,
                                )
                            }))
                            .unwrap_or_else(|payload| {
                                CellOutcome::Panicked {
                                    message: format!(
                                        "contained panic in point `{}` app `{app}`: {}",
                                        candidate.label,
                                        panic_text(payload.as_ref())
                                    ),
                                }
                            })
                        }
                    };
                    *cell_slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        let cell_results: Vec<CellOutcome> = cell_slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
            .collect();

        // Phase 4 (serial): fold cells into points and rank the
        // feasible ones.
        let design_points: Vec<DesignPoint> = points
            .iter()
            .enumerate()
            .map(|(p, &(cand_idx, budget))| {
                let candidate = &candidates[cand_idx];
                let row = &cell_results[p * self.apps.len()..(p + 1) * self.apps.len()];
                DesignPoint {
                    label: candidate.label.clone(),
                    kind: candidate.kind.clone(),
                    budget,
                    outcome: fold_point(candidate, &self.apps, row),
                }
            })
            .collect();
        let frontier = pareto_frontier(&design_points);
        CodesignReport {
            apps: self.apps.iter().map(|(n, _)| n.clone()).collect(),
            points: design_points,
            frontier,
        }
    }
}

/// A candidate core (or the reason it could not be built).
struct Candidate {
    label: String,
    kind: CandidateKind,
    /// Stimulus/ISA decoupling seed — a pure function of the label.
    stim_seed: u64,
    core: Result<Arc<Core>, String>,
}

fn candidate_of(label: String, kind: CandidateKind, core: Result<Core, String>) -> Candidate {
    let stim_seed = Fnv64::of_parts(|h| h.write_text(&label));
    Candidate {
        label,
        kind,
        stim_seed,
        core: core.map(Arc::new),
    }
}

fn build_base(spec: &CandidateKind) -> Candidate {
    match *spec {
        CandidateKind::Seed(s) => candidate_of(
            format!("gen_{s:x}"),
            CandidateKind::Seed(s),
            Ok(generated_core(s)),
        ),
        CandidateKind::Union(a, b) => candidate_of(
            format!("gen_{a:x}+gen_{b:x}"),
            CandidateKind::Union(a, b),
            merged_core(a, b).map_err(|e| format!("union failed: {e}")),
        ),
        CandidateKind::Merged { .. } => unreachable!("merge moves are built in phase 2"),
    }
}

fn build_move(base: &Candidate, base_idx: usize, name: &str, plan: &MergePlan) -> Candidate {
    let label = format!("{}/{name}", base.label);
    let kind = CandidateKind::Merged {
        base: base_idx,
        move_name: name.to_owned(),
    };
    let core = match &base.core {
        Err(reason) => Err(reason.clone()),
        Ok(core) => plan
            .apply(&core.datapath)
            .map_err(|e| format!("merge move failed: {e}"))
            .map(|dp| {
                // A merged datapath is a new architecture: re-derive its
                // instruction set (under the base's stimulus seed so the
                // ISA style stays a pure function of the label lineage).
                let isa = derive_isa(&dp, base.stim_seed);
                Core {
                    name: label.clone(),
                    datapath: dp,
                    controller: core.controller.clone(),
                    format: core.format,
                    classification: Some(isa.classification),
                    instruction_set: isa.instruction_set,
                    cover: isa.cover,
                }
            }),
    };
    candidate_of(label, kind, core)
}

/// Intra-core merge moves derivable from `dp`: for every secondary ALU
/// (`alu_1`, `alu_2`, …) and MULT, fold its operand register files and
/// output bus into the primary unit's. Pure function of the datapath —
/// the move list (and therefore the candidate order) is deterministic.
fn merge_moves_of(dp: &Datapath) -> Vec<(String, MergePlan)> {
    let mut moves = Vec::new();
    for (unit, suffixes) in [("alu", ["a", "b"]), ("mult", ["c", "x"])] {
        for k in 1u32.. {
            let secondary = format!("{unit}_{k}");
            if dp.opu(&secondary).is_none() {
                break;
            }
            let mut plan = MergePlan::new();
            let mut complete = true;
            for suffix in suffixes {
                let primary_rf = format!("rf_{unit}_{suffix}");
                let secondary_rf = format!("rf_{unit}_{k}_{suffix}");
                if dp.register_file(&primary_rf).is_some()
                    && dp.register_file(&secondary_rf).is_some()
                {
                    plan.merge_rfs(&[&primary_rf, &secondary_rf], &primary_rf);
                } else {
                    complete = false;
                }
            }
            let primary_bus = format!("bus_{unit}");
            let secondary_bus = format!("bus_{unit}_{k}");
            if dp.bus(&primary_bus).is_some() && dp.bus(&secondary_bus).is_some() {
                plan.merge_buses(&[&primary_bus, &secondary_bus], &primary_bus);
            } else {
                complete = false;
            }
            if complete {
                moves.push((format!("fold_{secondary}"), plan));
            }
        }
    }
    moves
}

/// Folds one point's per-app cells into a corpus verdict. Severity
/// order: a mismatch is never masked by an infeasibility elsewhere in
/// the corpus.
fn fold_point(
    candidate: &Candidate,
    apps: &[(String, String)],
    row: &[CellOutcome],
) -> PointOutcome {
    if let Err(reason) = &candidate.core {
        return PointOutcome::Unbuildable(reason.clone());
    }
    for (cell, (app, _)) in row.iter().zip(apps) {
        if let CellOutcome::Mismatch(detail) = cell {
            return PointOutcome::Mismatch {
                app: app.clone(),
                detail: detail.clone(),
            };
        }
    }
    for (cell, (app, _)) in row.iter().zip(apps) {
        match cell {
            CellOutcome::Exhausted(reason) => {
                return PointOutcome::Quarantined {
                    app: app.clone(),
                    reason: reason.clone(),
                }
            }
            CellOutcome::Panicked { message } => {
                return PointOutcome::Quarantined {
                    app: app.clone(),
                    reason: message.clone(),
                }
            }
            _ => {}
        }
    }
    for (cell, (app, _)) in row.iter().zip(apps) {
        if let CellOutcome::Infeasible(reason) = cell {
            return PointOutcome::Infeasible {
                app: app.clone(),
                reason: reason.clone(),
            };
        }
    }
    let core = match &candidate.core {
        Ok(c) => c,
        Err(_) => unreachable!("handled above"),
    };
    let per_app_cycles: Vec<u32> = row
        .iter()
        .map(|cell| match cell {
            CellOutcome::Pass { cycles, .. } => *cycles,
            _ => unreachable!("non-pass cells handled above"),
        })
        .collect();
    let degraded = row.iter().any(|c| c.is_degraded_pass());
    let cost = HwCost::of(core);
    PointMetrics {
        total_cycles: per_app_cycles.iter().sum(),
        per_app_cycles,
        score: cost.scalar(),
        cost,
        degraded,
    }
    .into()
}

impl From<PointMetrics> for PointOutcome {
    fn from(m: PointMetrics) -> Self {
        PointOutcome::Feasible(m)
    }
}

/// The non-dominated feasible points, as indices into `points`, sorted
/// by (total cycles, cost score, point index). Exact (cycles, score)
/// ties keep only the first point in sweep order, so the frontier is a
/// strictly shaped trade-off curve.
fn pareto_frontier(points: &[DesignPoint]) -> Vec<usize> {
    let feasible: Vec<(usize, u32, u64)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match &p.outcome {
            PointOutcome::Feasible(m) => Some((i, m.total_cycles, m.score)),
            _ => None,
        })
        .collect();
    let mut frontier: Vec<(usize, u32, u64)> = feasible
        .iter()
        .filter(|&&(i, cycles, score)| {
            !feasible.iter().any(|&(j, jc, js)| {
                let dominates = jc <= cycles && js <= score && (jc < cycles || js < score);
                let earlier_tie = jc == cycles && js == score && j < i;
                dominates || earlier_tie
            })
        })
        .copied()
        .collect();
    frontier.sort_by_key(|&(i, cycles, score)| (cycles, score, i));
    frontier.into_iter().map(|(i, _, _)| i).collect()
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// The result of a [`Codesign::run`]: every point in deterministic sweep
/// order, plus the Pareto frontier over the feasible ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodesignReport {
    /// Corpus app names, in column order.
    pub apps: Vec<String>,
    /// Every design point, candidate-major then budget order.
    pub points: Vec<DesignPoint>,
    /// Indices of the Pareto-optimal points, sorted by (cycles, cost).
    pub frontier: Vec<usize>,
}

impl CodesignReport {
    /// The frontier as points, in (cycles, cost) order. Every one of
    /// these verified bit-exact against the golden model on every
    /// corpus app — that is what `Feasible` means.
    pub fn frontier_points(&self) -> impl Iterator<Item = &DesignPoint> {
        self.frontier.iter().map(|&i| &self.points[i])
    }

    /// Feasible points.
    pub fn feasible(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points.iter().filter(|p| p.is_feasible())
    }

    /// Mismatch points — each one a compiler bug with a stated app and
    /// divergence detail.
    pub fn mismatches(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points
            .iter()
            .filter(|p| matches!(p.outcome, PointOutcome::Mismatch { .. }))
    }

    /// Quarantined points (fuel exhaustion / contained panics).
    pub fn quarantined(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points
            .iter()
            .filter(|p| matches!(p.outcome, PointOutcome::Quarantined { .. }))
    }
}

impl fmt::Display for CodesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>6} {:>7} {:>9} {:>6}  status",
            "point", "budget", "cycles", "cost", "iword"
        )?;
        for (i, p) in self.points.iter().enumerate() {
            let budget = p
                .budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_owned());
            match &p.outcome {
                PointOutcome::Feasible(m) => writeln!(
                    f,
                    "{:<28} {:>6} {:>7} {:>9} {:>6}  ok{}{}",
                    p.label,
                    budget,
                    m.total_cycles,
                    m.score,
                    m.cost.iword_bits,
                    if m.degraded { "*" } else { "" },
                    if self.frontier.contains(&i) {
                        "  <- frontier"
                    } else {
                        ""
                    },
                )?,
                PointOutcome::Unbuildable(reason) => writeln!(
                    f,
                    "{:<28} {:>6} {:>7} {:>9} {:>6}  unbuildable: {reason}",
                    p.label, budget, "-", "-", "-"
                )?,
                PointOutcome::Infeasible { app, reason } => writeln!(
                    f,
                    "{:<28} {:>6} {:>7} {:>9} {:>6}  infeasible[{app}]: {reason}",
                    p.label, budget, "-", "-", "-"
                )?,
                PointOutcome::Quarantined { app, reason } => writeln!(
                    f,
                    "{:<28} {:>6} {:>7} {:>9} {:>6}  QUARANTINED[{app}]: {reason}",
                    p.label, budget, "-", "-", "-"
                )?,
                PointOutcome::Mismatch { app, detail } => writeln!(
                    f,
                    "{:<28} {:>6} {:>7} {:>9} {:>6}  MISMATCH[{app}]: {detail}",
                    p.label, budget, "-", "-", "-"
                )?,
            }
        }
        writeln!(
            f,
            "{} points: {} feasible, {} on frontier, {} mismatch, {} quarantined",
            self.points.len(),
            self.feasible().count(),
            self.frontier.len(),
            self.mismatches().count(),
            self.quarantined().count()
        )?;
        write!(f, "frontier (cycles, cost):")?;
        for p in self.frontier_points() {
            if let PointOutcome::Feasible(m) = &p.outcome {
                write!(f, " [{} {}c/{}]", p.label, m.total_cycles, m.score)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;

    #[test]
    fn hw_cost_is_monotone_in_structure() {
        let tiny = HwCost::of(&cores::tiny_core());
        let audio = HwCost::of(&cores::audio_core());
        assert!(audio.opus > tiny.opus);
        assert!(audio.scalar() > tiny.scalar());
        assert!(audio.iword_bits > 0);
    }

    #[test]
    fn merge_moves_cover_secondary_units_only() {
        // The audio core has single ALU/MULT — no moves.
        assert!(merge_moves_of(&cores::audio_core().datapath).is_empty());
        // A generated core with a secondary unit yields a fold move.
        let mut saw_move = false;
        for seed in 0..16 {
            let core = cores::generated_core(seed);
            for (name, plan) in merge_moves_of(&core.datapath) {
                saw_move = true;
                assert!(name.starts_with("fold_"));
                // Every move must apply cleanly on its own datapath.
                let merged = plan.apply(&core.datapath).unwrap();
                assert!(merged.register_files().len() < core.datapath.register_files().len());
            }
        }
        assert!(saw_move, "no seed in 0..16 drew a secondary unit");
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_tie_deduped() {
        let mk = |cycles: u32, score: u64| DesignPoint {
            label: format!("p{cycles}_{score}"),
            kind: CandidateKind::Seed(0),
            budget: None,
            outcome: PointOutcome::Feasible(PointMetrics {
                per_app_cycles: vec![cycles],
                total_cycles: cycles,
                cost: HwCost {
                    opus: 1,
                    buses: 1,
                    mux_inputs: 0,
                    word_width: 16,
                    rf_bits: 0,
                    mem_bits: 0,
                    iword_bits: 8,
                    control_bits: 0,
                },
                score,
                degraded: false,
            }),
        };
        let points = vec![
            mk(10, 100), // frontier
            mk(10, 100), // exact tie: deduped
            mk(12, 90),  // frontier
            mk(12, 100), // dominated by both
            mk(8, 200),  // frontier
        ];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier, vec![4, 0, 2]);
    }
}
