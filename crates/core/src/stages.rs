//! The compiler pipeline as explicit, individually-invokable **stages**.
//!
//! `Compiler::compile` used to be a 150-line monolith that redid every
//! step on every call. This module splits it into the figure-1b stages —
//!
//! ```text
//! frontend (parse + sema)            → FrontendArtifact
//!   → RT generation (lower)          → LowerArtifact
//!   → RT modification (ISA imposure) → ModifyArtifact
//!   → deps + conflict matrix         → AnalysisArtifact
//!   → scheduling                     → ScheduleArtifact
//!   → register allocation            → RegallocArtifact
//!   → instruction encoding           → EncodeArtifact
//! ```
//!
//! — each a *pure function* of its inputs producing an immutable,
//! `Arc`-shared artifact. The stage **key** functions alongside compute a
//! content fingerprint of exactly the inputs each stage reads (source ×
//! datapath × controller × instruction set × the option subset that stage
//! consumes), which is what lets [`crate::CompileSession`] memoize
//! artifacts across the paper's design-iteration cycle: re-compiling with
//! only a different budget or priority reuses the lowering, the
//! classification work, the dependence graph, and the conflict matrix.
//!
//! The staged path is **bit-identical** to the historical monolith — the
//! stages are the same code in the same order, and `tests/prop_session.rs`
//! pins warm (cached) recompiles against cold ones.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dspcc_arch::Fnv64;
use dspcc_dfg::{parse, Dfg};
use dspcc_encode::{allocate_registers, encode, FieldLayout, Microcode, RegAssignment};
use dspcc_isa::{artificial_resources, Classification};
use dspcc_rtgen::{apply_instruction_set, lower, LowerOptions, Lowering};
use dspcc_sched::bounds::length_lower_bound;
use dspcc_sched::compact::schedule_and_compact_fueled;
use dspcc_sched::deps::DependenceGraph;
use dspcc_sched::exact::{exact_schedule, ExactConfig};
use dspcc_sched::list::{list_schedule_with_matrix, ListConfig, Priority};
use dspcc_sched::{
    CancelToken, ConflictMatrix, Degradation, DegradeAction, Fuel, SchedError, Schedule,
};

use crate::pipeline::{CompileError, Core};
use crate::session::CompileOptions;

// ---------------------------------------------------------------------------
// Fingerprints and stage keys
// ---------------------------------------------------------------------------

/// Fingerprint of raw source text.
pub fn source_fingerprint(source: &str) -> u64 {
    Fnv64::of_parts(|h| h.write_text(source))
}

/// Content fingerprint of a built signal-flow graph.
///
/// The `Dfg` is plain data (nodes, ports, signals, coefficients) whose
/// `Debug` rendering is a complete, deterministic view of that content, so
/// hashing it is a faithful content key. Keying the lowering stage on the
/// *graph* rather than the source text means whitespace-only source edits
/// invalidate nothing past the frontend.
pub fn dfg_fingerprint(dfg: &Dfg) -> u64 {
    let mut h = Fnv64::new();
    let _ = write!(h, "{dfg:?}");
    h.finish()
}

fn priority_tag(p: Priority) -> u8 {
    match p {
        Priority::Slack => 0,
        Priority::Alap => 1,
        Priority::SinkAlap => 2,
        Priority::CriticalPath => 3,
        Priority::SourceOrder => 4,
    }
}

/// Key of the RT-generation stage: the graph content, the datapath, and
/// the single option it reads (`cse_constants`).
pub fn lower_key(dfg_fp: u64, core: &Core, options: &CompileOptions) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("lower");
        h.write_u64(dfg_fp);
        h.write_u64(core.datapath.fingerprint());
        h.write_bool(options.cse_constants);
    })
}

/// Key of the RT-modification stage: the lowering it modifies plus the
/// classification, instruction set, and cover strategy it imposes.
pub fn modify_key(lower_key: u64, core: &Core) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("modify");
        h.write_u64(lower_key);
        match &core.classification {
            Some(c) => {
                h.write_bool(true);
                h.write_u64(c.fingerprint());
            }
            None => h.write_bool(false),
        }
        match &core.instruction_set {
            Some(iset) => {
                h.write_bool(true);
                h.write_u64(iset.fingerprint());
            }
            None => h.write_bool(false),
        }
        h.write_u64(core.cover.fingerprint());
    })
}

/// Key of the dependence-graph + conflict-matrix stage: both are pure
/// functions of the modified program.
pub fn analysis_key(modify_key: u64) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("analysis");
        h.write_u64(modify_key);
    })
}

/// Key of the scheduling stage: the analysed program plus the controller
/// fingerprint (the stage reads its program depth as the hard cap; keying
/// the whole controller is conservative) and **exactly the option subset
/// the chosen scheduler reads** — `exact_max_nodes` only under the exact scheduler,
/// `restarts` only under the compacting restart engine, `priority` only
/// under plain list scheduling. Re-compiling with a different priority
/// while the compacting scheduler is active is therefore a *full* cache
/// hit: the option is not an input of that path.
///
/// `sched_threads` is deliberately excluded everywhere: the parallel
/// restart engine is bit-identical for every thread count (pinned by the
/// scheduler's own tests), so it is a latency knob, not an input. The
/// budget is keyed as given (not clamped to the cap) — conservative, but
/// key computation stays a pure function of the options.
pub fn schedule_key(analysis_key: u64, core: &Core, options: &CompileOptions) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("schedule");
        h.write_u64(analysis_key);
        h.write_u64(core.controller.fingerprint());
        match options.budget {
            Some(b) => {
                h.write_bool(true);
                h.write_u32(b);
            }
            None => h.write_bool(false),
        }
        h.write_bool(options.exact);
        h.write_bool(options.compaction);
        if options.exact {
            h.write_u64(options.exact_max_nodes);
        } else if options.compaction {
            h.write_u32(options.restarts);
        } else {
            h.write_u8(priority_tag(options.priority));
        }
        // Fuel is an *input* of the exact and restart schedulers (a
        // truncated search produces a different — possibly degraded —
        // schedule), so a fuel-limited result must never be cached under
        // a full-budget key. The plain list scheduler runs exactly one
        // mandatory attempt whatever the fuel, so there — like
        // `sched_threads` everywhere — fuel is excluded as
        // output-invariant.
        match options.fuel {
            Some(f) if options.exact || options.compaction => {
                h.write_bool(true);
                h.write_u64(f);
            }
            _ => h.write_bool(false),
        }
    })
}

/// Key of the register-allocation stage (all inputs — program, schedule,
/// datapath, pinned registers — are determined by the schedule key).
pub fn regalloc_key(schedule_key: u64) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("regalloc");
        h.write_u64(schedule_key);
    })
}

/// Key of the encoding stage: the allocated program plus the word format
/// (field layout, immediate conversion, and the ROM image read it).
pub fn encode_key(schedule_key: u64, core: &Core) -> u64 {
    Fnv64::of_parts(|h| {
        h.write_text("encode");
        h.write_u64(schedule_key);
        h.write_u32(core.format.width());
    })
}

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

/// Frontend output: the signal-flow graph plus its content fingerprint.
#[derive(Debug)]
pub struct FrontendArtifact {
    /// The built graph.
    pub dfg: Arc<Dfg>,
    /// Content fingerprint of `dfg` (keys the lowering stage).
    pub dfg_fp: u64,
    /// Wall-clock time of parsing.
    pub parse_time: Duration,
    /// Wall-clock time of semantic analysis / graph building.
    pub sema_time: Duration,
}

/// RT-generation output: the *unmodified* lowering.
#[derive(Debug)]
pub struct LowerArtifact {
    /// The lowering, before any instruction set is imposed.
    pub lowering: Arc<Lowering>,
    /// Wall-clock time of the stage.
    pub time: Duration,
}

/// RT-modification output: the lowering with the instruction set imposed
/// (shared untouched with the lower artifact when the core has none).
#[derive(Debug)]
pub struct ModifyArtifact {
    /// The (possibly ISA-modified) lowering the rest of the pipeline reads.
    pub lowering: Arc<Lowering>,
    /// The classification used, if any.
    pub classification: Option<Classification>,
    /// Names of the artificial resources installed (empty without an ISA).
    pub artificial_names: Vec<String>,
    /// Wall-clock time of the stage.
    pub time: Duration,
}

/// Dependence + conflict analysis output.
#[derive(Debug)]
pub struct AnalysisArtifact {
    /// The dependence graph.
    pub deps: Arc<DependenceGraph>,
    /// The conflict matrix.
    pub matrix: Arc<ConflictMatrix>,
    /// Wall-clock time of dependence-graph construction.
    pub deps_time: Duration,
    /// Wall-clock time of conflict-matrix construction.
    pub matrix_time: Duration,
}

/// Scheduling output.
#[derive(Debug)]
pub struct ScheduleArtifact {
    /// The schedule.
    pub schedule: Arc<Schedule>,
    /// Provable lower bound on the schedule length.
    pub bound: u32,
    /// `Some` when the fuel budget truncated the search and this is the
    /// best-so-far rather than the full-budget result.
    pub degradation: Option<Degradation>,
    /// Wall-clock time of the stage.
    pub time: Duration,
}

/// Register-allocation output.
#[derive(Debug)]
pub struct RegallocArtifact {
    /// The assignment (with its rewritten program).
    pub assignment: Arc<RegAssignment>,
    /// Wall-clock time of the stage.
    pub time: Duration,
}

/// Encoding output.
#[derive(Debug)]
pub struct EncodeArtifact {
    /// The executable microcode.
    pub microcode: Arc<Microcode>,
    /// Wall-clock time of the stage.
    pub time: Duration,
}

// ---------------------------------------------------------------------------
// Stage runners
// ---------------------------------------------------------------------------

/// Parses and analyses `source` into a signal-flow graph.
///
/// # Errors
///
/// [`CompileError::Parse`] / [`CompileError::Sema`].
pub fn run_frontend(source: &str) -> Result<FrontendArtifact, CompileError> {
    let t = Instant::now();
    let program = parse(source).map_err(CompileError::Parse)?;
    let parse_time = t.elapsed();
    let t = Instant::now();
    let dfg = Dfg::build(&program).map_err(CompileError::Sema)?;
    let sema_time = t.elapsed();
    let dfg_fp = dfg_fingerprint(&dfg);
    Ok(FrontendArtifact {
        dfg: Arc::new(dfg),
        dfg_fp,
        parse_time,
        sema_time,
    })
}

/// Wraps an already-built graph as a frontend artifact (zero frontend
/// cost — the caller did that work).
pub fn frontend_from_dfg(dfg: Arc<Dfg>) -> FrontendArtifact {
    let dfg_fp = dfg_fingerprint(&dfg);
    FrontendArtifact {
        dfg,
        dfg_fp,
        parse_time: Duration::ZERO,
        sema_time: Duration::ZERO,
    }
}

/// RT generation (compiler step 1).
///
/// # Errors
///
/// [`CompileError::Lower`].
pub fn run_lower(
    dfg: &Dfg,
    core: &Core,
    options: &CompileOptions,
) -> Result<LowerArtifact, CompileError> {
    let opts = LowerOptions {
        cse_constants: options.cse_constants,
    };
    let t = Instant::now();
    let lowering = lower(dfg, &core.datapath, &opts).map_err(CompileError::Lower)?;
    Ok(LowerArtifact {
        lowering: Arc::new(lowering),
        time: t.elapsed(),
    })
}

/// RT modification (compiler step 2): imposes the core's instruction set
/// as artificial resource conflicts.
///
/// Cores without an instruction set share the lower artifact's `Lowering`
/// untouched; with one, the lowering is cloned once and modified (the
/// clone is what makes the *lower* artifact reusable across cover
/// strategies and instruction-set variants).
pub fn run_modify(lowered: &LowerArtifact, core: &Core) -> ModifyArtifact {
    let t = Instant::now();
    match (&core.classification, &core.instruction_set) {
        (Some(c), Some(iset)) => {
            let ars = artificial_resources(iset, c, core.cover);
            let mut lowering = (*lowered.lowering).clone();
            let artificial_names = apply_instruction_set(&mut lowering.program, c, &ars);
            ModifyArtifact {
                lowering: Arc::new(lowering),
                classification: Some(c.clone()),
                artificial_names,
                time: t.elapsed(),
            }
        }
        (None, Some(iset)) => {
            let c = Classification::identify(&core.datapath);
            let ars = artificial_resources(iset, &c, core.cover);
            let mut lowering = (*lowered.lowering).clone();
            let artificial_names = apply_instruction_set(&mut lowering.program, &c, &ars);
            ModifyArtifact {
                lowering: Arc::new(lowering),
                classification: Some(c),
                artificial_names,
                time: t.elapsed(),
            }
        }
        _ => ModifyArtifact {
            lowering: Arc::clone(&lowered.lowering),
            classification: core.classification.clone(),
            artificial_names: Vec::new(),
            time: t.elapsed(),
        },
    }
}

/// Dependence-graph and conflict-matrix construction (the analysis the
/// scheduler and its lower bounds share).
///
/// # Errors
///
/// [`CompileError::Deps`].
pub fn run_analysis(modified: &ModifyArtifact) -> Result<AnalysisArtifact, CompileError> {
    let lowering = &modified.lowering;
    let t = Instant::now();
    let deps = DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges)
        .map_err(|e| CompileError::Deps(e.to_string()))?;
    let deps_time = t.elapsed();
    let t = Instant::now();
    let matrix = ConflictMatrix::build(&lowering.program);
    let matrix_time = t.elapsed();
    Ok(AnalysisArtifact {
        deps: Arc::new(deps),
        matrix: Arc::new(matrix),
        deps_time,
        matrix_time,
    })
}

/// Maps scheduler errors into the pipeline taxonomy, lifting the
/// cooperative-cancellation case out of the stage-provenance wrapper.
fn schedule_error(e: SchedError) -> CompileError {
    match e {
        SchedError::Cancelled => CompileError::Cancelled,
        other => CompileError::Schedule(other),
    }
}

/// Scheduling (compiler step 3): exact, compacting-restart, or plain list
/// scheduling per the options, plus the provable length lower bound and
/// the controller's program-memory check.
///
/// When [`CompileOptions::fuel`] is set, the search runs under that
/// deterministic unit budget (one unit = one attempt, justification
/// pass, or branch-and-bound node): exhaustion degrades — the exact
/// scheduler falls back to the heuristic, the heuristic returns its
/// best-so-far — and the artifact carries the [`Degradation`] report.
/// `cancel` is polled inside the search; a raised token aborts with
/// [`CompileError::Cancelled`].
///
/// # Errors
///
/// [`CompileError::Schedule`] / [`CompileError::ProgramTooLong`] /
/// [`CompileError::Cancelled`].
pub fn run_schedule(
    modified: &ModifyArtifact,
    analysis: &AnalysisArtifact,
    core: &Core,
    options: &CompileOptions,
    cancel: Option<&CancelToken>,
) -> Result<ScheduleArtifact, CompileError> {
    let program = &modified.lowering.program;
    let deps = &analysis.deps;
    let matrix = &analysis.matrix;
    let t = Instant::now();
    let hard_cap = core.controller.program_depth();
    let budget = options.budget.map(|b| b.min(hard_cap)).unwrap_or(hard_cap);
    let mut fuel = options.fuel.map(Fuel::limited).unwrap_or_default();
    let (schedule, bound, degradation) = if options.exact {
        // Fuel counts branch-and-bound node expansions here: the node cap
        // is the smaller of the configured cap and the remaining fuel,
        // and the nodes actually explored are charged afterwards.
        let mut config = ExactConfig::new(budget);
        config.max_nodes = options.exact_max_nodes.min(fuel.remaining());
        config.cancel = cancel.cloned();
        let fuel_capped = config.max_nodes < options.exact_max_nodes;
        let result = exact_schedule(program, deps, &config);
        fuel.charge_saturating(result.nodes_explored);
        if result.cancelled {
            return Err(CompileError::Cancelled);
        }
        match result.schedule {
            Some(s) => {
                let bound = length_lower_bound(program, deps, matrix);
                (s, bound, None)
            }
            None if !result.complete && fuel_capped => {
                // The fuel budget (not the user's node cap) stopped the
                // exact search short of an answer: degrade to the
                // heuristic scheduler on whatever fuel remains instead of
                // failing a compile that more machinery could still
                // serve.
                let fallback = schedule_and_compact_fueled(
                    program,
                    deps,
                    matrix,
                    Some(budget),
                    options.restarts,
                    options.sched_threads,
                    &mut fuel,
                    cancel,
                )
                .map_err(schedule_error)?;
                let degradation = Degradation {
                    stage: "schedule",
                    spent: fuel.used(),
                    action: DegradeAction::ExactToHeuristic {
                        nodes_explored: result.nodes_explored,
                    },
                };
                (fallback.schedule, fallback.bound, Some(degradation))
            }
            None => {
                // Proven infeasibility, or the user's own node cap gave
                // up: both keep their historical error surface.
                return Err(CompileError::Schedule(SchedError::BudgetExceeded {
                    budget,
                    unplaced: program.rt_count(),
                }));
            }
        }
    } else if options.compaction {
        let r = schedule_and_compact_fueled(
            program,
            deps,
            matrix,
            Some(budget),
            options.restarts,
            options.sched_threads,
            &mut fuel,
            cancel,
        )
        .map_err(schedule_error)?;
        (r.schedule, r.bound, r.degradation)
    } else {
        // One mandatory list attempt: runs whatever the fuel (the
        // baseline every degradation ladder bottoms out at), so fuel is
        // charged saturating and never changes the output.
        if cancel.map(CancelToken::is_cancelled).unwrap_or(false) {
            return Err(CompileError::Cancelled);
        }
        fuel.charge_saturating(1);
        let config = ListConfig {
            budget: Some(budget),
            priority: options.priority,
            jitter_seed: 0,
        };
        let schedule = list_schedule_with_matrix(program, deps, matrix, &config)
            .map_err(CompileError::Schedule)?;
        let bound = length_lower_bound(program, deps, matrix);
        (schedule, bound, None)
    };
    let time = t.elapsed();
    if schedule.length() > hard_cap {
        return Err(CompileError::ProgramTooLong {
            needed: schedule.length(),
            available: hard_cap,
        });
    }
    Ok(ScheduleArtifact {
        schedule: Arc::new(schedule),
        bound,
        degradation,
        time,
    })
}

/// Register allocation (compiler step 4).
///
/// # Errors
///
/// [`CompileError::RegAlloc`].
pub fn run_regalloc(
    modified: &ModifyArtifact,
    schedule: &ScheduleArtifact,
    core: &Core,
) -> Result<RegallocArtifact, CompileError> {
    let lowering = &modified.lowering;
    let t = Instant::now();
    let pinned = vec![lowering.fp_reg.clone()];
    let assignment = allocate_registers(
        &lowering.program,
        &schedule.schedule,
        &core.datapath,
        &pinned,
    )
    .map_err(CompileError::RegAlloc)?;
    Ok(RegallocArtifact {
        assignment: Arc::new(assignment),
        time: t.elapsed(),
    })
}

/// Instruction encoding (compiler step 5): field layout, instruction
/// words, and the executable microcode bundle.
///
/// # Errors
///
/// [`CompileError::Encode`].
pub fn run_encode(
    modified: &ModifyArtifact,
    schedule: &ScheduleArtifact,
    regalloc: &RegallocArtifact,
    core: &Core,
) -> Result<EncodeArtifact, CompileError> {
    let lowering = &modified.lowering;
    let t = Instant::now();
    let layout = FieldLayout::derive(&core.datapath, core.format);
    let words = encode(
        &regalloc.assignment.program,
        &schedule.schedule,
        &layout,
        &lowering.immediates,
        core.format,
    )
    .map_err(CompileError::Encode)?;
    let (output_order, input_order) = lowering.io_orders();
    let microcode = Microcode {
        words,
        layout,
        rom_image: lowering
            .rom_image
            .iter()
            .map(|&v| core.format.from_f64(v))
            .collect(),
        region_size: lowering.ram_layout.region_size,
        output_order,
        input_order,
        word_format: core.format,
    };
    Ok(EncodeArtifact {
        microcode: Arc::new(microcode),
        time: t.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;

    #[test]
    fn stage_keys_track_their_inputs() {
        let core = cores::audio_core();
        let opts = CompileOptions::default();
        let fe = run_frontend("input u; output y; y = pass(u);").unwrap();
        let lk = lower_key(fe.dfg_fp, &core, &opts);
        // Same inputs → same key.
        assert_eq!(lk, lower_key(fe.dfg_fp, &core, &opts));
        // The lowering key ignores schedule-only options...
        let mut sched_opts = opts.clone();
        sched_opts.budget = Some(64);
        sched_opts.restarts = 1;
        assert_eq!(lk, lower_key(fe.dfg_fp, &core, &sched_opts));
        // ...but tracks the one option it reads.
        let mut cse = opts.clone();
        cse.cse_constants = true;
        assert_ne!(lk, lower_key(fe.dfg_fp, &core, &cse));
        // Schedule keys track budget/priority/restarts.
        let sk = schedule_key(analysis_key(modify_key(lk, &core)), &core, &opts);
        let sk2 = schedule_key(analysis_key(modify_key(lk, &core)), &core, &sched_opts);
        assert_ne!(sk, sk2);
        // ...but not the thread count (output-invariant).
        let mut threads = opts.clone();
        threads.sched_threads = 7;
        assert_eq!(
            sk,
            schedule_key(analysis_key(modify_key(lk, &core)), &core, &threads)
        );
    }

    #[test]
    fn dfg_fingerprint_is_content_keyed() {
        let a = run_frontend("input u; output y; y = pass(u);").unwrap();
        // Whitespace-only edits change the source but not the graph.
        let b = run_frontend("input u;  output y;\ny = pass(u);").unwrap();
        assert_eq!(a.dfg_fp, b.dfg_fp);
        let c = run_frontend("input u; output y; y = pass_clip(u);").unwrap();
        assert_ne!(a.dfg_fp, c.dfg_fp);
    }

    #[test]
    fn modify_without_isa_shares_the_lowering() {
        let core = cores::tiny_core();
        let fe = run_frontend("input u; output y; y = pass(u);").unwrap();
        let lowered = run_lower(&fe.dfg, &core, &CompileOptions::default()).unwrap();
        let modified = run_modify(&lowered, &core);
        assert!(Arc::ptr_eq(&lowered.lowering, &modified.lowering));
    }
}
