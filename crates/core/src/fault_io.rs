//! Chaos-injected I/O audit — auditing the *cache recovery machinery*,
//! not the compiler.
//!
//! The persistent artifact cache ([`crate::cache`]) makes one promise:
//! a corrupt or misbehaving cache can cost time but can never corrupt
//! output. This module tests that promise the way [`crate::fault`]
//! tests the conformance oracle — by construction. A seeded
//! [`ChaosBackend`] injects one I/O fault kind per cell (torn write,
//! flipped byte, ENOSPC, delayed read, vanished file, transient read
//! error) under a real [`DiskCache`], and two compile sessions run over
//! it: a cold one that populates the (sabotaged) cache, then a fresh
//! one that warm-starts from whatever the chaos left on disk. Both
//! results are compared bit-for-bit — microcode words, ROM image,
//! schedule, register assignment — against a chaos-free reference
//! compile.
//!
//! Every cell must end in exactly one of:
//!
//! * **Recovered-with-witness** — both compiles are bit-identical to
//!   the reference, *and* the cell can prove it actually saw chaos: the
//!   injected-fault count plus the cache's recovery counters
//!   (quarantines, read errors, store errors) form the witness. A cell
//!   that recovered without evidence of injection proves nothing and is
//!   a harness failure;
//! * **Typed error** — the compile surfaced a typed
//!   [`crate::CompileError`] (e.g. `CacheIo` under
//!   [`TransientPolicy::Fail`]) instead of an artifact;
//! * **Wrong artifact** — a compile *served* something that differs
//!   from the reference. This is the one forbidden state: a silent
//!   wrong-artifact serve means the entry validation let corruption
//!   through, and the pinned audit (`tests/io_fault.rs`) holds it at
//!   zero over the full grid.
//!
//! Determinism: every cell's chaos draws come from
//! [`dspcc_arch::SplitMix64::substream`]`(seed, fnv("chaos-io", kind))`,
//! cells get
//! private cache directories, and compiles run with deterministic
//! options, so the report is identical for every thread count.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cache::{
    CacheBackend, CacheStats, ChaosBackend, DiskCache, IoFaultKind, StdFs, TransientPolicy,
};
use crate::pipeline::{Compiled, Core};
use crate::session::{CompileOptions, CompileSession};

/// The verdict on one chaos cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFaultOutcome {
    /// Both the cold and the warm-from-disk compile were bit-identical
    /// to the chaos-free reference, and the cell proved it saw chaos.
    Recovered {
        /// The proof: injected-fault count and the recovery counters
        /// that absorbed them.
        witness: String,
    },
    /// The compile resolved to a typed error instead of an artifact —
    /// an honest failure, never a wrong serve.
    TypedError {
        /// The error's rendering.
        error: String,
    },
    /// A compile served an artifact that differs from the reference —
    /// the forbidden state the audit exists to pin at zero.
    WrongArtifact {
        /// Which artifact diverged, and in which session.
        detail: String,
    },
    /// The cell could not be armed (the app does not compile on the
    /// audit core even without chaos).
    Skipped {
        /// Why.
        reason: String,
    },
}

impl IoFaultOutcome {
    /// Whether this cell ended in the forbidden state.
    pub fn is_wrong_artifact(&self) -> bool {
        matches!(self, IoFaultOutcome::WrongArtifact { .. })
    }

    /// Whether this cell recovered with a witness.
    pub fn is_recovered(&self) -> bool {
        matches!(self, IoFaultOutcome::Recovered { .. })
    }
}

/// One audited `(seed, app, kind)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultCell {
    /// Chaos seed.
    pub seed: u64,
    /// Corpus app name.
    pub app: String,
    /// The injected fault kind.
    pub kind: IoFaultKind,
    /// The verdict.
    pub outcome: IoFaultOutcome,
}

/// A seeded chaos audit over the persistent cache: seeds × apps × I/O
/// fault kinds, run in parallel with per-cell panic containment and
/// per-cell private cache directories.
///
/// # Example
///
/// ```no_run
/// use dspcc::fault_io::IoFaultAudit;
///
/// let report = IoFaultAudit::new().seed_range(0..4).standard_corpus().run();
/// assert_eq!(report.wrong_artifacts().count(), 0, "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct IoFaultAudit {
    core: Arc<Core>,
    seeds: Vec<u64>,
    apps: Vec<(String, String)>,
    kinds: Vec<IoFaultKind>,
    threads: usize,
    options: CompileOptions,
}

impl Default for IoFaultAudit {
    fn default() -> Self {
        IoFaultAudit {
            // Same posture as `FaultAudit`: a fixed, fully-featured core
            // so every (seed, app) compiles and the seed axis is pure
            // chaos diversity.
            core: Arc::new(crate::cores::audio_core()),
            seeds: Vec::new(),
            apps: Vec::new(),
            kinds: IoFaultKind::ALL.to_vec(),
            threads: 0,
            options: CompileOptions {
                restarts: 2,
                sched_threads: 1,
                fuel: Some(10_000),
                ..CompileOptions::default()
            },
        }
    }
}

impl IoFaultAudit {
    /// An empty audit on the default (audio) core.
    pub fn new() -> Self {
        IoFaultAudit::default()
    }

    /// Replaces the audited core.
    pub fn core(mut self, core: Core) -> Self {
        self.core = Arc::new(core);
        self
    }

    /// Adds a contiguous seed block.
    pub fn seed_range(mut self, range: std::ops::Range<u64>) -> Self {
        self.seeds.extend(range);
        self
    }

    /// Adds one application.
    pub fn app(mut self, name: impl Into<String>, source: impl Into<String>) -> Self {
        self.apps.push((name.into(), source.into()));
        self
    }

    /// Adds the fleet's [`crate::conform::standard_corpus`].
    pub fn standard_corpus(mut self) -> Self {
        self.apps.extend(crate::conform::standard_corpus());
        self
    }

    /// Restricts the fault kinds (default: all six).
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = IoFaultKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        assert!(!self.kinds.is_empty(), "kind dimension must be non-empty");
        self
    }

    /// Worker threads: `0` (default) one per available core, `1` serial.
    /// The report is identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the compile options of the audited compiles.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the audit: every `(seed, app, kind)` cell, in deterministic
    /// (seed, app, kind) order.
    ///
    /// # Panics
    ///
    /// Panics if the audit has no seeds or no apps.
    pub fn run(&self) -> IoFaultReport {
        assert!(!self.seeds.is_empty(), "audit needs at least one seed");
        assert!(!self.apps.is_empty(), "audit needs at least one app");
        // Chaos-free reference compiles, once per app through a shared
        // cache-less session: the bit-identity baseline for every cell.
        let session = CompileSession::new();
        let reference: Vec<Result<Compiled, String>> = self
            .apps
            .iter()
            .map(|(_, source)| {
                session
                    .compile(&self.core, source, &self.options)
                    .map_err(|e| e.to_string())
            })
            .collect();
        let audit_root = std::env::temp_dir().join(format!(
            "dspcc-io-audit-{}-{:x}",
            std::process::id(),
            // Distinguish concurrent audits in one process.
            &raw const session as usize
        ));
        let cells: Vec<(usize, usize, usize)> = self
            .seeds
            .iter()
            .enumerate()
            .flat_map(|(s, _)| {
                (0..self.apps.len())
                    .flat_map(move |a| (0..self.kinds.len()).map(move |k| (s, a, k)))
            })
            .collect();
        let slots: Vec<Mutex<Option<IoFaultCell>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(cells.len())
        .max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, a, k)) = cells.get(i) else {
                        break;
                    };
                    let seed = self.seeds[s];
                    let (app, source) = &self.apps[a];
                    let kind = self.kinds[k];
                    let outcome = match &reference[a] {
                        Ok(reference) => {
                            let dir = audit_root.join(format!("{seed:x}-{app}-{kind}"));
                            let outcome = self.chaos_cell(reference, source, seed, kind, &dir);
                            let _ = std::fs::remove_dir_all(&dir);
                            outcome
                        }
                        Err(e) => IoFaultOutcome::Skipped {
                            reason: format!("app does not compile on the audit core: {e}"),
                        },
                    };
                    *slots[i].lock().unwrap() = Some(IoFaultCell {
                        seed,
                        app: app.clone(),
                        kind,
                        outcome,
                    });
                });
            }
        });
        let _ = std::fs::remove_dir_all(&audit_root);
        IoFaultReport {
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
                .collect(),
        }
    }

    /// One cell: a cold compile populating a chaos-backed cache, then a
    /// fresh session warm-starting from the sabotaged disk, both
    /// compared bit-for-bit against the reference. Panics anywhere in
    /// the cell are contained into a typed outcome.
    fn chaos_cell(
        &self,
        reference: &Compiled,
        source: &str,
        seed: u64,
        kind: IoFaultKind,
        dir: &Path,
    ) -> IoFaultOutcome {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.run_cell(reference, source, seed, kind, dir)
        }));
        result.unwrap_or_else(|payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_owned()
            };
            IoFaultOutcome::TypedError {
                error: format!("panicked mid-cell (contained): {msg}"),
            }
        })
    }

    fn run_cell(
        &self,
        reference: &Compiled,
        source: &str,
        seed: u64,
        kind: IoFaultKind,
        dir: &Path,
    ) -> IoFaultOutcome {
        let chaos = Arc::new(ChaosBackend::new(Arc::new(StdFs), kind, seed));
        let backend: Arc<dyn CacheBackend> = Arc::clone(&chaos) as _;
        let cache = Arc::new(
            DiskCache::with_backend(dir, backend).transient_policy(TransientPolicy::Recompute),
        );
        // Cold pass: populates the cache through the fault injector.
        let cold = CompileSession::with_disk_cache(Arc::clone(&cache));
        match cold.compile(&self.core, source, &self.options) {
            Ok(compiled) => {
                if let Some(detail) = diverges(reference, &compiled) {
                    return IoFaultOutcome::WrongArtifact {
                        detail: format!("cold pass: {detail}"),
                    };
                }
            }
            Err(e) => {
                return IoFaultOutcome::TypedError {
                    error: format!("cold pass: {e}"),
                }
            }
        }
        // Warm pass: a *fresh* session (empty memo) must rebuild the
        // compile from whatever the chaos left on disk — valid entries,
        // torn entries, flipped bytes, vanished files — and still land
        // bit-identical.
        let warm = CompileSession::with_disk_cache(Arc::clone(&cache));
        match warm.compile(&self.core, source, &self.options) {
            Ok(compiled) => {
                if let Some(detail) = diverges(reference, &compiled) {
                    return IoFaultOutcome::WrongArtifact {
                        detail: format!("warm-from-disk pass: {detail}"),
                    };
                }
            }
            Err(e) => {
                return IoFaultOutcome::TypedError {
                    error: format!("warm-from-disk pass: {e}"),
                }
            }
        }
        // Both passes served the right artifact. That only counts as
        // *recovery* if the cell can prove faults were actually
        // injected and absorbed.
        let injected = chaos.injected();
        if injected == 0 {
            return IoFaultOutcome::WrongArtifact {
                detail: format!(
                    "harness failure: no {kind} fault was injected — the cell proves nothing"
                ),
            };
        }
        IoFaultOutcome::Recovered {
            witness: witness(kind, injected, cache.stats()),
        }
    }
}

/// The recovery proof: which counters absorbed the injected faults.
fn witness(kind: IoFaultKind, injected: u64, stats: CacheStats) -> String {
    format!(
        "{injected} {kind} fault(s) injected; absorbed by: {} quarantined, {} read \
         error(s), {} store error(s), {} miss(es), {} hit(s), {} store(s)",
        stats.quarantined,
        stats.read_errors,
        stats.store_errors,
        stats.misses,
        stats.hits,
        stats.stores
    )
}

/// Bit-identity check against the reference: microcode words, ROM
/// image, schedule, register assignment. `None` when identical.
fn diverges(reference: &Compiled, got: &Compiled) -> Option<String> {
    if got.microcode.words != reference.microcode.words {
        return Some("microcode words differ from the chaos-free reference".to_owned());
    }
    if got.microcode.rom_image != reference.microcode.rom_image {
        return Some("ROM image differs from the chaos-free reference".to_owned());
    }
    if *got.schedule != *reference.schedule {
        return Some("schedule differs from the chaos-free reference".to_owned());
    }
    if got.assignment.mapping != reference.assignment.mapping {
        return Some("register assignment differs from the chaos-free reference".to_owned());
    }
    None
}

/// The audit table: one cell per `(seed, app, kind)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultReport {
    /// All cells, in deterministic (seed, app, kind) order.
    pub cells: Vec<IoFaultCell>,
}

impl IoFaultReport {
    /// Cells that recovered with a witness.
    pub fn recovered(&self) -> impl Iterator<Item = &IoFaultCell> {
        self.cells.iter().filter(|c| c.outcome.is_recovered())
    }

    /// Cells that ended in a typed error.
    pub fn typed_errors(&self) -> impl Iterator<Item = &IoFaultCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, IoFaultOutcome::TypedError { .. }))
    }

    /// Cells that served a wrong artifact — each one a cache-validation
    /// bug (the pinned audit holds this at zero).
    pub fn wrong_artifacts(&self) -> impl Iterator<Item = &IoFaultCell> {
        self.cells.iter().filter(|c| c.outcome.is_wrong_artifact())
    }

    /// Cells that could not be armed.
    pub fn skipped(&self) -> impl Iterator<Item = &IoFaultCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, IoFaultOutcome::Skipped { .. }))
    }
}

impl fmt::Display for IoFaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>10} {:>11} {:>6} {:>8}",
            "kind", "cells", "recovered", "typed-error", "wrong", "skipped"
        )?;
        for kind in IoFaultKind::ALL {
            let of_kind: Vec<&IoFaultCell> = self.cells.iter().filter(|c| c.kind == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>6} {:>10} {:>11} {:>6} {:>8}",
                kind.name(),
                of_kind.len(),
                of_kind.iter().filter(|c| c.outcome.is_recovered()).count(),
                of_kind
                    .iter()
                    .filter(|c| matches!(c.outcome, IoFaultOutcome::TypedError { .. }))
                    .count(),
                of_kind
                    .iter()
                    .filter(|c| c.outcome.is_wrong_artifact())
                    .count(),
                of_kind
                    .iter()
                    .filter(|c| matches!(c.outcome, IoFaultOutcome::Skipped { .. }))
                    .count(),
            )?;
        }
        for cell in self.wrong_artifacts() {
            writeln!(
                f,
                "WRONG-ARTIFACT seed={:#x} app={} kind={}: {}",
                cell.seed,
                cell.app,
                cell.kind,
                match &cell.outcome {
                    IoFaultOutcome::WrongArtifact { detail } => detail.as_str(),
                    _ => unreachable!(),
                }
            )?;
        }
        write!(
            f,
            "{} cells: {} recovered, {} typed error(s), {} wrong artifact(s), {} skipped",
            self.cells.len(),
            self.recovered().count(),
            self.typed_errors().count(),
            self.wrong_artifacts().count(),
            self.skipped().count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_audit_recovers_every_cell() {
        let report = IoFaultAudit::new()
            .seed_range(0..2)
            .app("fir4", crate::apps::fir(4))
            .run();
        assert_eq!(report.cells.len(), 12);
        assert_eq!(report.wrong_artifacts().count(), 0, "{report}");
        assert_eq!(report.skipped().count(), 0, "{report}");
        // Every kind actually injected and recovered.
        assert!(report.recovered().count() > 0, "{report}");
    }

    #[test]
    fn audit_is_deterministic_across_thread_counts() {
        let audit = IoFaultAudit::new()
            .seed_range(0..2)
            .app("sop4", crate::apps::sum_of_products(4))
            .kinds([
                IoFaultKind::TornWrite,
                IoFaultKind::FlipByte,
                IoFaultKind::Vanish,
            ]);
        let serial = audit.clone().threads(1).run();
        let parallel = audit.threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn recovered_cells_state_a_witness() {
        let report = IoFaultAudit::new()
            .seed_range(0..1)
            .app("fir4", crate::apps::fir(4))
            .run();
        for cell in report.recovered() {
            match &cell.outcome {
                IoFaultOutcome::Recovered { witness } => {
                    assert!(witness.contains("injected"), "{witness}")
                }
                _ => unreachable!(),
            }
        }
    }
}
