//! Seeded fault injection — auditing the *oracle*, not the compiler.
//!
//! The conformance fleet ([`crate::conform`]) rests on one claim: any
//! defect that reaches a compiled artifact shows up as a divergence
//! against the golden model. This module tests that claim instead of
//! the compiler. A seeded injector deliberately corrupts compiled
//! artifacts — microcode bits, ROM constants, schedule rows, register
//! operands — and every mutant must end in exactly one of two states:
//!
//! * **Detected** — the oracle stack killed it: the pipeline's own
//!   re-checks rejected the mutated artifact, the simulator refused to
//!   load it, the differential run diverged from the golden model, or
//!   the mutant made the toolchain panic (contained by the audit);
//! * **Benign** — the mutation provably cannot change observable
//!   behaviour, with the proof stated as a *witness* (the flipped bit
//!   decodes to the identical instruction; the corrupted ROM address is
//!   never read; the swapped schedule is dependence- and resource-clean
//!   and therefore a valid alternative compilation).
//!
//! A mutant that is neither — [`FaultOutcome::Survived`] — is a hole in
//! the fleet's detection power: a class of real compiler bug the fleet
//! would wave through. The audit therefore *pins* zero survivors over a
//! seeded grid (`tests/fault_audit.rs`), turning the fleet's detection
//! power into a regression-tested property.
//!
//! Determinism: mutation draws come from
//! [`SplitMix64::substream`]`(seed, fnv(app, kind))` and stimulus from
//! the fleet's own [`crate::conform`] stream, so every cell reproduces
//! from `(seed, app, kind)` alone.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dspcc_arch::{Fnv64, OpuKind, OpuSpec, SplitMix64};
use dspcc_dfg::Interpreter;
use dspcc_encode::{allocate_registers, decode, encode, DecodedInstruction, Microcode, OpuAction};
use dspcc_sched::Schedule;

use crate::conform::stimulus_rng;
use crate::pipeline::{Compiled, Core};
use crate::session::{CompileOptions, CompileSession};

/// The artifact corruptions the injector knows how to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationKind {
    /// Flip one bit of one instruction word.
    BitFlip,
    /// Replace one ROM constant with a maximally-distant in-range value.
    RomCorrupt,
    /// Swap two instruction rows of the schedule and re-encode.
    CycleSwap,
    /// Redirect one RT operand to a different register of the same file
    /// and re-encode.
    RegRedirect,
}

impl MutationKind {
    /// Every kind, in audit order.
    pub const ALL: [MutationKind; 4] = [
        MutationKind::BitFlip,
        MutationKind::RomCorrupt,
        MutationKind::CycleSwap,
        MutationKind::RegRedirect,
    ];

    /// Stable name (used in the mutation RNG tag and reports).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::BitFlip => "bitflip",
            MutationKind::RomCorrupt => "romcorrupt",
            MutationKind::CycleSwap => "cycleswap",
            MutationKind::RegRedirect => "regredirect",
        }
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which layer of the oracle stack killed a detected mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// The differential run diverged from the golden model.
    Mismatch,
    /// The simulator refused the artifact (construction or execution).
    SimError,
    /// A pipeline re-check (schedule verifier, register allocator,
    /// encoder) rejected the mutated artifact.
    PipelineError,
    /// The toolchain panicked on the mutant; the audit contained it.
    Panic,
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Detection::Mismatch => "mismatch",
            Detection::SimError => "sim-error",
            Detection::PipelineError => "pipeline-error",
            Detection::Panic => "panic",
        })
    }
}

/// The verdict on one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The oracle stack killed the mutant.
    Detected {
        /// The layer that caught it.
        how: Detection,
        /// What the detector reported.
        detail: String,
    },
    /// The mutation provably cannot change observable behaviour.
    Benign {
        /// The proof, stated (e.g. "decodes to the identical
        /// instruction").
        witness: String,
    },
    /// The mutation was live but nothing caught it — a fleet bug.
    Survived {
        /// What was mutated, for triage.
        detail: String,
    },
    /// The cell could not arm this mutation (artifact too small, app
    /// infeasible on the audit options…).
    Skipped {
        /// Why.
        reason: String,
    },
}

impl FaultOutcome {
    /// Whether the oracle stack caught this mutant.
    pub fn is_detected(&self) -> bool {
        matches!(self, FaultOutcome::Detected { .. })
    }

    /// Whether this mutant silently survived.
    pub fn is_survived(&self) -> bool {
        matches!(self, FaultOutcome::Survived { .. })
    }
}

/// One audited `(seed, app, kind)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCell {
    /// Mutation/stimulus seed.
    pub seed: u64,
    /// Corpus app name.
    pub app: String,
    /// What was injected.
    pub kind: MutationKind,
    /// Human description of the concrete mutation.
    pub mutation: String,
    /// The verdict.
    pub outcome: FaultOutcome,
}

/// A seeded fault-injection audit over one core: seeds × apps ×
/// mutation kinds, run in parallel with per-cell panic containment.
///
/// # Example
///
/// ```no_run
/// use dspcc::fault::FaultAudit;
///
/// let report = FaultAudit::new().seed_range(0..8).standard_corpus().run();
/// assert_eq!(report.survived().count(), 0, "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct FaultAudit {
    core: Arc<Core>,
    seeds: Vec<u64>,
    apps: Vec<(String, String)>,
    kinds: Vec<MutationKind>,
    frames: u32,
    threads: usize,
    options: CompileOptions,
    paranoid: bool,
}

impl Default for FaultAudit {
    fn default() -> Self {
        FaultAudit {
            // A fixed, fully-featured core: every (seed, app) compiles,
            // so every cell is armed and the seed axis is pure mutation/
            // stimulus diversity (unlike the conformance fleet, where
            // seeds generate architectures and cells may be infeasible).
            core: Arc::new(crate::cores::audio_core()),
            seeds: Vec::new(),
            apps: Vec::new(),
            kinds: MutationKind::ALL.to_vec(),
            frames: 12,
            threads: 0,
            options: CompileOptions {
                restarts: 2,
                sched_threads: 1,
                fuel: Some(10_000),
                ..CompileOptions::default()
            },
            paranoid: false,
        }
    }
}

impl FaultAudit {
    /// An empty audit on the default (audio) core.
    pub fn new() -> Self {
        FaultAudit::default()
    }

    /// Replaces the audited core.
    pub fn core(mut self, core: Core) -> Self {
        self.core = Arc::new(core);
        self
    }

    /// Adds a contiguous seed block.
    pub fn seed_range(mut self, range: std::ops::Range<u64>) -> Self {
        self.seeds.extend(range);
        self
    }

    /// Adds one application.
    pub fn app(mut self, name: impl Into<String>, source: impl Into<String>) -> Self {
        self.apps.push((name.into(), source.into()));
        self
    }

    /// Adds the fleet's [`crate::conform::standard_corpus`].
    pub fn standard_corpus(mut self) -> Self {
        self.apps.extend(crate::conform::standard_corpus());
        self
    }

    /// Restricts the mutation kinds (default: all).
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = MutationKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        assert!(!self.kinds.is_empty(), "kind dimension must be non-empty");
        self
    }

    /// Frames per differential hunt (default 12).
    pub fn frames(mut self, frames: u32) -> Self {
        self.frames = frames;
        self
    }

    /// Worker threads: `0` (default) one per available core, `1` serial.
    /// The report is identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the compile options of the audited artifacts.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Cross-checks every static benign witness against the
    /// differential hunt (default off). A witness the hunt refutes is a
    /// bug in the witness analysis itself and surfaces as
    /// [`FaultOutcome::Survived`], so `survived().count() == 0` then
    /// also proves the witness layer sound on this grid.
    pub fn paranoid(mut self, paranoid: bool) -> Self {
        self.paranoid = paranoid;
        self
    }

    /// Runs the audit: every `(seed, app, kind)` cell, in deterministic
    /// (seed, app, kind) order.
    ///
    /// # Panics
    ///
    /// Panics if the audit has no seeds or no apps.
    pub fn run(&self) -> FaultReport {
        assert!(!self.seeds.is_empty(), "audit needs at least one seed");
        assert!(!self.apps.is_empty(), "audit needs at least one app");
        // Compile each app once (serially — the session caches by
        // content, and the seeds all mutate the same artifact).
        let session = CompileSession::new();
        let compiled: Vec<Result<Compiled, String>> = self
            .apps
            .iter()
            .map(|(_, source)| {
                session
                    .compile(&self.core, source, &self.options)
                    .map_err(|e| e.to_string())
            })
            .collect();
        let cells: Vec<(usize, usize, usize)> = self
            .seeds
            .iter()
            .enumerate()
            .flat_map(|(s, _)| {
                (0..self.apps.len())
                    .flat_map(move |a| (0..self.kinds.len()).map(move |k| (s, a, k)))
            })
            .collect();
        let slots: Vec<Mutex<Option<FaultCell>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(cells.len())
        .max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, a, k)) = cells.get(i) else {
                        break;
                    };
                    let seed = self.seeds[s];
                    let (app, _) = &self.apps[a];
                    let kind = self.kinds[k];
                    let cell = match &compiled[a] {
                        Ok(c) => self.audit_cell(c, seed, app, kind),
                        Err(e) => FaultCell {
                            seed,
                            app: app.clone(),
                            kind,
                            mutation: String::new(),
                            outcome: FaultOutcome::Skipped {
                                reason: format!("app does not compile on the audit core: {e}"),
                            },
                        },
                    };
                    *slots[i].lock().unwrap() = Some(cell);
                });
            }
        });
        FaultReport {
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
                .collect(),
        }
    }

    /// One cell: inject, then hunt. Panics anywhere inside injection or
    /// detection are contained into [`Detection::Panic`].
    fn audit_cell(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        kind: MutationKind,
    ) -> FaultCell {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.inject_and_hunt(compiled, seed, app, kind)
        }));
        let (mutation, outcome) = result.unwrap_or_else(|payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_owned()
            };
            (
                format!("{kind} (panicked mid-audit)"),
                FaultOutcome::Detected {
                    how: Detection::Panic,
                    detail: msg,
                },
            )
        });
        FaultCell {
            seed,
            app: app.to_owned(),
            kind,
            mutation,
            outcome,
        }
    }

    fn inject_and_hunt(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        kind: MutationKind,
    ) -> (String, FaultOutcome) {
        let tag = Fnv64::of_parts(|h| {
            h.write_text(app);
            h.write_text(kind.name());
        });
        let mut rng = SplitMix64::substream(seed, tag);
        match kind {
            MutationKind::BitFlip => self.inject_bitflip(compiled, seed, app, &mut rng),
            MutationKind::RomCorrupt => self.inject_rom(compiled, seed, app, &mut rng),
            MutationKind::CycleSwap => self.inject_cycle_swap(compiled, seed, app, &mut rng),
            MutationKind::RegRedirect => self.inject_reg_redirect(compiled, seed, app, &mut rng),
        }
    }

    /// Flip one bit of one instruction word. Witness: the mutated word
    /// decodes to the identical instruction (the bit is padding the
    /// field layout never reads).
    fn inject_bitflip(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        rng: &mut SplitMix64,
    ) -> (String, FaultOutcome) {
        let microcode = &compiled.microcode;
        if microcode.words.is_empty() {
            return (
                "bitflip".to_owned(),
                FaultOutcome::Skipped {
                    reason: "empty microcode".to_owned(),
                },
            );
        }
        let w = (rng.next_u64() % microcode.words.len() as u64) as usize;
        let bit = (rng.next_u64() % u64::from(microcode.layout.width())) as u32;
        let mut mutated = (**microcode).clone();
        let old = mutated.words[w].bits(bit, 1);
        mutated.words[w].set_bits(bit, 1, old ^ 1);
        let mutation = format!("flip bit {bit} of word {w}");
        let format = microcode.word_format;
        // Witness check: decode both words and compare their *semantic*
        // views — the parts of the instruction the executor actually
        // reads. A flip in padding, in an operand port past the op's
        // read arity, or toggling a destination-less pure function unit
        // is provably dead.
        let original = decode(&microcode.words[w], &microcode.layout, format);
        let flipped = decode(&mutated.words[w], &microcode.layout, format);
        if let (Ok(a), Ok(b)) = (&original, &flipped) {
            if semantic_view(a) == semantic_view(b) {
                let witness = if a == b {
                    format!(
                        "bit {bit} of word {w} is outside every field: the mutated word \
                         decodes to the identical instruction"
                    )
                } else {
                    format!(
                        "bit {bit} of word {w} only affects dead state: the decoded \
                         instructions are identical after dropping destination-less \
                         pure-OPU actions and unread operand ports"
                    )
                };
                let outcome = self.benign(compiled, &mutated, seed, app, &mutation, witness);
                return (mutation, outcome);
            }
        }
        // Second witness tier: cyclic dead-store / reaching-constant
        // analysis over the whole decoded program (the flip may corrupt
        // a write nobody ever observes).
        if let Some(witness) = microcode_witness(compiled, &mutated) {
            let outcome = self.benign(compiled, &mutated, seed, app, &mutation, witness);
            return (mutation, outcome);
        }
        (
            mutation.clone(),
            self.hunt(compiled, &mutated, seed, app, &mutation),
        )
    }

    /// Replace one ROM constant with the maximally-distant in-range
    /// value. Witness: the corrupted address is never read — it appears
    /// in no decoded ROM-access immediate of the program.
    fn inject_rom(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        rng: &mut SplitMix64,
    ) -> (String, FaultOutcome) {
        let microcode = &compiled.microcode;
        if microcode.rom_image.is_empty() {
            return (
                "romcorrupt".to_owned(),
                FaultOutcome::Skipped {
                    reason: "app has no ROM image".to_owned(),
                },
            );
        }
        let addr = (rng.next_u64() % microcode.rom_image.len() as u64) as usize;
        let format = microcode.word_format;
        let old = microcode.rom_image[addr];
        // Maximally distant and always representable (and never equal to
        // the original, since min != max for any width).
        let new = if old == format.max_value() {
            format.min_value()
        } else {
            format.max_value()
        };
        let mut mutated = (**microcode).clone();
        mutated.rom_image[addr] = new;
        let mutation = format!("ROM[{addr}]: {old} -> {new}");
        // Witness check: the set of ROM addresses the program actually
        // reads, collected statically from the decoded instructions.
        let rom_opus: Vec<&str> = compiled
            .core
            .datapath
            .opus()
            .iter()
            .filter(|o| o.kind() == OpuKind::Rom)
            .map(|o| o.name())
            .collect();
        let mut read = false;
        for word in &microcode.words {
            if let Ok(d) = decode(word, &microcode.layout, format) {
                for action in &d.actions {
                    if rom_opus.contains(&action.opu.as_str()) && action.imm == Some(addr as i64) {
                        read = true;
                    }
                }
            }
        }
        if !read {
            let witness = format!(
                "ROM address {addr} appears in no decoded ROM-access immediate: \
                 the program never reads it"
            );
            let outcome = self.benign(compiled, &mutated, seed, app, &mutation, witness);
            return (mutation, outcome);
        }
        (
            mutation.clone(),
            self.hunt(compiled, &mutated, seed, app, &mutation),
        )
    }

    /// Swap two instruction rows of the schedule, then push the mutated
    /// schedule back through register allocation and encoding. The
    /// schedule verifier is the first oracle layer: a clean verify means
    /// the swap produced a *valid alternative compilation* (witnessed,
    /// then differentially confirmed); a dirty verify means the mutant
    /// must die in re-encoding or in the differential run.
    fn inject_cycle_swap(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        rng: &mut SplitMix64,
    ) -> (String, FaultOutcome) {
        let schedule = &compiled.schedule;
        let len = schedule.length();
        if len < 2 {
            return (
                "cycleswap".to_owned(),
                FaultOutcome::Skipped {
                    reason: format!("schedule has {len} cycle(s), nothing to swap"),
                },
            );
        }
        let c1 = (rng.next_u64() % u64::from(len)) as u32;
        let mut c2 = (rng.next_u64() % u64::from(len - 1)) as u32;
        if c2 >= c1 {
            c2 += 1;
        }
        let mut cycles: Vec<Vec<_>> = (0..len).map(|c| schedule.instruction(c).to_vec()).collect();
        cycles.swap(c1 as usize, c2 as usize);
        let mutated = Schedule::from_cycles(cycles);
        let mutation = format!("swap schedule rows {c1} and {c2}");
        let program = &compiled.lowering.program;
        let verified = mutated.verify(program, &compiled.deps);
        // Re-encode under the mutated schedule (regalloc reads the
        // schedule's live ranges, so it must rerun too).
        let reencoded = self.reencode(compiled, &mutated);
        match (verified, reencoded) {
            (Err(e), Err(enc)) => (
                mutation,
                FaultOutcome::Detected {
                    how: Detection::PipelineError,
                    detail: format!("schedule verifier: {e}; re-encode also failed: {enc}"),
                },
            ),
            (Err(e), Ok(m)) => {
                // Invalid schedule that still encodes: the differential
                // run must kill it; the verifier verdict alone is not an
                // end-to-end detection (the fleet never runs `verify` on
                // artifacts it merely executes).
                match self.hunt(compiled, &m, seed, app, &mutation) {
                    FaultOutcome::Survived { detail } => (
                        mutation,
                        FaultOutcome::Survived {
                            detail: format!(
                                "{detail}; verifier flagged it ({e}) but the \
                                             differential run did not"
                            ),
                        },
                    ),
                    caught => (mutation, caught),
                }
            }
            (Ok(()), Err(enc)) => (
                mutation,
                FaultOutcome::Detected {
                    how: Detection::PipelineError,
                    detail: format!("verify-clean swap failed to re-encode: {enc}"),
                },
            ),
            (Ok(()), Ok(m)) => match self.hunt(compiled, &m, seed, app, &mutation) {
                FaultOutcome::Survived { .. } => (
                    mutation.clone(),
                    FaultOutcome::Benign {
                        witness: format!(
                            "rows {c1} and {c2} are independent: the swapped schedule is \
                             dependence- and resource-clean (Schedule::verify) and the \
                             re-encoded microcode ran differentially equal"
                        ),
                    },
                ),
                FaultOutcome::Detected { how, detail } => (
                    mutation,
                    // A verify-clean schedule whose re-encoding diverges
                    // would mean the verifier is too weak — surface it
                    // as a detection with the contradiction spelled out.
                    FaultOutcome::Detected {
                        how,
                        detail: format!(
                            "verify-clean swap still diverged ({detail}) — schedule \
                             verifier gap?"
                        ),
                    },
                ),
                other => (mutation, other),
            },
        }
    }

    /// Redirect one RT operand to a different register of the same file
    /// and re-encode under the unchanged schedule. Always armed; the
    /// redirect is benign only when the consuming unit's result feeds a
    /// provably dead store ([`microcode_witness`]) — otherwise the
    /// differential run must kill it.
    fn inject_reg_redirect(
        &self,
        compiled: &Compiled,
        seed: u64,
        app: &str,
        rng: &mut SplitMix64,
    ) -> (String, FaultOutcome) {
        let program = &compiled.assignment.program;
        let dp = &compiled.core.datapath;
        // Candidate operand slots: any operand of any RT whose register
        // file has at least two registers.
        let mut candidates: Vec<(dspcc_ir::RtId, usize, u32, u32)> = Vec::new();
        for id in program.rt_ids() {
            let rt = program.rt(id);
            for (slot, reg) in rt.operands().iter().enumerate() {
                let size = dp
                    .register_files()
                    .iter()
                    .find(|r| r.name() == reg.rf().name())
                    .map(|r| r.size())
                    .unwrap_or(0);
                if size >= 2 {
                    candidates.push((id, slot, reg.index(), size));
                }
            }
        }
        if candidates.is_empty() {
            return (
                "regredirect".to_owned(),
                FaultOutcome::Skipped {
                    reason: "no operand reads a register file with ≥ 2 registers".to_owned(),
                },
            );
        }
        let (rt_id, slot, p, size) =
            candidates[(rng.next_u64() % candidates.len() as u64) as usize];
        let q = (p + 1 + (rng.next_u64() % u64::from(size - 1)) as u32) % size;
        let mut mutated_program = program.clone();
        let rt = mutated_program.rt_mut(rt_id);
        let dests = rt.dests().len();
        let target = dests + slot; // remap_registers visits dests, then operands
        let mut visit = 0usize;
        rt.remap_registers(|r| {
            let mapped = if visit == target { r.with_index(q) } else { *r };
            visit += 1;
            mapped
        });
        let mutation = format!("{rt_id}: operand {slot} register {p} -> {q}");
        // Re-encode the mutated program under the original schedule.
        let microcode = &compiled.microcode;
        let words = match encode(
            &mutated_program,
            &compiled.schedule,
            &microcode.layout,
            &compiled.lowering.immediates,
            microcode.word_format,
        ) {
            Ok(w) => w,
            Err(e) => {
                return (
                    mutation,
                    FaultOutcome::Detected {
                        how: Detection::PipelineError,
                        detail: format!("encoder rejected the redirect: {e}"),
                    },
                )
            }
        };
        let mutated = Microcode {
            words,
            ..(**microcode).clone()
        };
        if let Some(witness) = microcode_witness(compiled, &mutated) {
            let outcome = self.benign(compiled, &mutated, seed, app, &mutation, witness);
            return (mutation, outcome);
        }
        (
            mutation.clone(),
            self.hunt(compiled, &mutated, seed, app, &mutation),
        )
    }

    /// Wraps a static benign witness. In paranoid mode the differential
    /// hunt still runs: a witness the hunt refutes is unsound and is
    /// surfaced as [`FaultOutcome::Survived`] — a bug in the witness
    /// analysis, not in the fleet.
    fn benign(
        &self,
        compiled: &Compiled,
        mutated: &Microcode,
        seed: u64,
        app: &str,
        mutation: &str,
        witness: String,
    ) -> FaultOutcome {
        if self.paranoid {
            if let FaultOutcome::Detected { how, detail } =
                self.hunt(compiled, mutated, seed, app, mutation)
            {
                return FaultOutcome::Survived {
                    detail: format!(
                        "witness refuted: claimed benign ({witness}) but the \
                         differential detected it ({how}: {detail})"
                    ),
                };
            }
        }
        FaultOutcome::Benign { witness }
    }

    /// Re-runs register allocation and encoding for a mutated schedule,
    /// mirroring the pipeline's own stage calls.
    fn reencode(&self, compiled: &Compiled, schedule: &Schedule) -> Result<Microcode, String> {
        let lowering = &compiled.lowering;
        let dp = &compiled.core.datapath;
        let pinned = vec![lowering.fp_reg.clone()];
        let assignment = allocate_registers(&lowering.program, schedule, dp, &pinned)
            .map_err(|e| e.to_string())?;
        let microcode = &compiled.microcode;
        let words = encode(
            &assignment.program,
            schedule,
            &microcode.layout,
            &lowering.immediates,
            microcode.word_format,
        )
        .map_err(|e| e.to_string())?;
        Ok(Microcode {
            words,
            ..(**microcode).clone()
        })
    }

    /// The detection run: load the mutated artifact into the simulator
    /// and race it against the golden model over the fleet's stimulus.
    fn hunt(
        &self,
        compiled: &Compiled,
        mutated: &Microcode,
        seed: u64,
        app: &str,
        mutation: &str,
    ) -> FaultOutcome {
        let core = &compiled.core;
        let mut sim = match dspcc_sim::CoreSim::new(&core.datapath, mutated) {
            Ok(s) => s,
            Err(e) => {
                return FaultOutcome::Detected {
                    how: Detection::SimError,
                    detail: format!("simulator refused the artifact: {e}"),
                }
            }
        };
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        let ports = compiled.dfg.input_ports().len();
        let mut rng = stimulus_rng(seed, app);
        let lo = core.format.min_value();
        let span = (core.format.max_value() - lo + 1) as u64;
        for frame in 0..self.frames {
            let inputs: Vec<i64> = (0..ports)
                .map(|_| lo + (rng.next_u64() % span) as i64)
                .collect();
            let expected = match interp.try_step(&inputs) {
                Ok(v) => v,
                Err(e) => {
                    // The golden model rejecting the *unmutated* graph is
                    // an audit setup failure, not a detection.
                    return FaultOutcome::Skipped {
                        reason: format!("golden model rejected the stimulus: {e}"),
                    };
                }
            };
            match sim.step_frame(&inputs) {
                Ok(got) if got == expected => {}
                Ok(got) => {
                    return FaultOutcome::Detected {
                        how: Detection::Mismatch,
                        detail: format!(
                            "frame {frame}: {got:?} != golden {expected:?} (inputs {inputs:?})"
                        ),
                    }
                }
                Err(e) => {
                    return FaultOutcome::Detected {
                        how: Detection::SimError,
                        detail: format!("frame {frame}: execution failed: {e}"),
                    }
                }
            }
        }
        FaultOutcome::Survived {
            detail: format!(
                "{mutation}: {} frame(s) ran bit-identical to the golden model",
                self.frames
            ),
        }
    }
}

/// The executor-visible view of a decoded instruction, for the bit-flip
/// benignity witness. Mirrors the simulator's execution rules exactly:
/// a destination-less ALU/MULT/ACU activation computes a value nobody
/// reads through a total function (no error path), and operand ports
/// past the op's read arity are never resolved. Everything else —
/// including destination-less RAM/ROM/input activations, whose address
/// and FIFO side effects *are* observable — stays in the view.
type SemanticAction = (String, String, Vec<u32>, Vec<(String, u32)>, Option<i64>);

fn semantic_view(d: &DecodedInstruction) -> Vec<SemanticAction> {
    d.actions
        .iter()
        .filter_map(|a| {
            let dead_pure =
                a.dests.is_empty() && matches!(a.kind, OpuKind::Alu | OpuKind::Mult | OpuKind::Acu);
            if dead_pure {
                return None;
            }
            let arity = read_arity(a).min(a.operand_regs.len());
            let regs = a.operand_regs.iter().take(arity).copied().collect();
            Some((a.opu.clone(), a.op.clone(), regs, a.dests.clone(), a.imm))
        })
        .collect()
}

/// How many operand ports the executor actually resolves for this
/// action — mirrors the simulator's per-kind execution rules.
fn read_arity(a: &OpuAction) -> usize {
    match a.kind {
        OpuKind::Input | OpuKind::ProgConst | OpuKind::Rom => 0,
        OpuKind::Output => 1,
        OpuKind::Acu | OpuKind::Mult => 2,
        OpuKind::Ram => {
            if a.op == "write" {
                2
            } else {
                1
            }
        }
        OpuKind::Alu => {
            if a.op == "pass" || a.op == "pass_clip" {
                1
            } else {
                2
            }
        }
        _ => a.operand_regs.len(),
    }
}

/// One statically-known register write: its landing position on the
/// cyclic steady-state timeline (issue cycle + writeback latency, mod
/// program length) and the stored value when it is a compile-time
/// constant (program constant or ROM read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticWrite {
    land: u32,
    value: Option<i64>,
}

/// Register traffic of a decoded program on the executor's timeline:
/// which cycles read each `(rf, register)` and where each write to it
/// lands. The executor pops pending writebacks due at cycle `c` before
/// executing cycle `c`, so a read at cycle `c` observes every write
/// with landing position ≤ `c`.
struct StaticTraffic {
    reads: BTreeMap<(String, u32), Vec<u32>>,
    writes: BTreeMap<(String, u32), Vec<StaticWrite>>,
}

/// Builds the traffic table, or `None` when the static story breaks
/// down: an unknown OPU, an out-of-range ROM access (a runtime fault,
/// not a silent write), or two writes to one register landing on the
/// same cycle (overwrite order too subtle to reason about statically).
/// Callers fall back to the differential hunt.
fn static_traffic(
    core: &Core,
    mc: &Microcode,
    decoded: &[DecodedInstruction],
) -> Option<StaticTraffic> {
    let dp = &core.datapath;
    let n = u32::try_from(decoded.len()).ok()?;
    if n == 0 {
        return None;
    }
    let mut reads: BTreeMap<(String, u32), Vec<u32>> = BTreeMap::new();
    let mut writes: BTreeMap<(String, u32), Vec<StaticWrite>> = BTreeMap::new();
    for (t, d) in decoded.iter().enumerate() {
        let t = t as u32;
        for a in &d.actions {
            let opu = dp.opus().iter().find(|o| o.name() == a.opu)?;
            let arity = read_arity(a).min(a.operand_regs.len());
            for (port, &reg) in a.operand_regs.iter().take(arity).enumerate() {
                let rf = opu.inputs().get(port)?.clone();
                reads.entry((rf, reg)).or_default().push(t);
            }
            let value = written_value(opu, a, mc)?;
            let lat = opu.latency_of(&a.op).unwrap_or(1).max(1);
            for (rf, reg) in &a.dests {
                writes
                    .entry((rf.clone(), *reg))
                    .or_default()
                    .push(StaticWrite {
                        land: (t + lat) % n,
                        value,
                    });
            }
        }
    }
    for list in writes.values_mut() {
        list.sort_by_key(|w| w.land);
        if list.windows(2).any(|p| p[0].land == p[1].land) {
            return None;
        }
    }
    Some(StaticTraffic { reads, writes })
}

/// The compile-time-known value an action writes: `Some(Some(v))` for
/// constants, `Some(None)` for dynamic values, `None` when the action
/// could fault at runtime (out-of-range ROM access) — which voids the
/// whole static analysis.
fn written_value(opu: &OpuSpec, a: &OpuAction, mc: &Microcode) -> Option<Option<i64>> {
    match a.kind {
        OpuKind::ProgConst => Some(Some(a.imm?)),
        OpuKind::Rom => {
            let addr = a.imm?;
            if addr < 0 || addr >= i64::from(opu.memory_size()) {
                return None;
            }
            Some(Some(mc.rom_image.get(addr as usize).copied().unwrap_or(0)))
        }
        _ => Some(None),
    }
}

/// `r ∈ [start, end)` on the cyclic timeline (`start != end`).
fn in_cyclic_interval(r: u32, start: u32, end: u32) -> bool {
    if start < end {
        start <= r && r < end
    } else {
        r >= start || r < end
    }
}

/// Whether the write landing at `land` is dead: no read of the register
/// falls between its landing and the landing of the next write to the
/// same register (cyclically — a write at the end of the frame is live
/// into the next frame's prefix). `timeline` always contains the write
/// at `land` itself; a register with a single write holds its value for
/// the whole loop, so any read at all makes it live.
fn write_is_dead(reads: &[u32], timeline: &[StaticWrite], land: u32, n: u32) -> bool {
    let next = timeline
        .iter()
        .map(|w| w.land)
        .filter(|&l| l != land)
        .min_by_key(|&l| (l + n - land) % n);
    match next {
        Some(next) => !reads.iter().any(|&r| in_cyclic_interval(r, land, next)),
        None => reads.is_empty(),
    }
}

/// What one allowed microcode difference does to one register.
enum WriteImpact {
    /// The write still happens but may store a different value.
    ValueChanged { old: Option<i64>, new: Option<i64> },
    /// The mutant no longer performs this write.
    Removed { value: Option<i64> },
    /// The mutant performs a write the original did not.
    Added { value: Option<i64> },
}

/// The value a read of `key` at cycle `r` observes, when statically
/// known: `(first frame, steady state)`. Registers start at zero; the
/// observed write is the most recent landing ≤ `r`, wrapping to the
/// frame's last landing in steady state. `None` when the reaching
/// write's value is dynamic.
fn read_value(traffic: &StaticTraffic, key: &(String, u32), r: u32) -> Option<(i64, i64)> {
    let Some(timeline) = traffic.writes.get(key) else {
        return Some((0, 0)); // never written: holds its initial zero
    };
    let before = timeline.iter().rev().find(|w| w.land <= r);
    let steady = match before {
        Some(w) => w.value?,
        None => timeline.last()?.value?, // lands late, wraps from the previous frame
    };
    let frame1 = match before {
        Some(w) => w.value?,
        None => 0, // nothing has landed yet in the first frame
    };
    Some((frame1, steady))
}

/// Discharges a known-constant value change whose delta is a multiple
/// of the ACU region size, by taint propagation: the ACU computes
/// `(v & !m) | ((base + v) & m)` with `m = region_size − 1`, so a delta
/// `D ≡ 0 (mod region_size)` shifts the output by exactly `D` when it
/// enters through the offset port (the low bits are untouched, the high
/// bits add exactly) and vanishes entirely through the base port. The
/// worklist follows the delta from the mutated write through every read
/// in its live interval; the proof holds iff every such read is an ACU
/// port (base absorbs, offset forwards the taint to the ACU's own
/// destinations). Returns the number of sites the delta was absorbed
/// at, or `None` if any read escapes the ACU.
fn congruence_absorbed(
    core: &Core,
    dec_a: &[DecodedInstruction],
    dec_b: &[DecodedInstruction],
    traffic_a: &StaticTraffic,
    n: u32,
    start: ((String, u32), u32),
) -> Option<usize> {
    let dp = &core.datapath;
    let mut seen: std::collections::BTreeSet<((String, u32), u32)> =
        std::collections::BTreeSet::new();
    let mut work = vec![start];
    let mut absorbed = 0usize;
    while let Some((key, land)) = work.pop() {
        if !seen.insert((key.clone(), land)) {
            continue;
        }
        let timeline = traffic_a.writes.get(&key)?;
        let next = timeline
            .iter()
            .map(|w| w.land)
            .filter(|&l| l != land)
            .min_by_key(|&l| (l + n - land) % n);
        for t in 0..n {
            let live = match next {
                Some(end) => in_cyclic_interval(t, land, end),
                None => true,
            };
            if !live {
                continue;
            }
            // Readers must agree between the variants (the mutation may
            // touch only the write we started from), and every reader
            // of the tainted interval must be an ACU port.
            for (da, db) in [(dec_a, dec_b), (dec_b, dec_a)] {
                for a in &da[t as usize].actions {
                    let opu = dp.opus().iter().find(|o| o.name() == a.opu)?;
                    let arity = read_arity(a).min(a.operand_regs.len());
                    for (port, &reg) in a.operand_regs.iter().take(arity).enumerate() {
                        let rf = opu.inputs().get(port)?;
                        if rf != &key.0 || reg != key.1 {
                            continue;
                        }
                        if !db[t as usize].actions.contains(a) {
                            return None;
                        }
                        if a.kind != OpuKind::Acu {
                            return None;
                        }
                        match port {
                            0 => absorbed += 1,
                            1 => {
                                let lat = opu.latency_of(&a.op).unwrap_or(1).max(1);
                                for (rf2, reg2) in &a.dests {
                                    work.push(((rf2.clone(), *reg2), (t + lat) % n));
                                }
                            }
                            _ => return None,
                        }
                    }
                }
            }
        }
    }
    Some(absorbed / 2) // each site was counted from both variants
}

/// An added or dropped RAM write is unobservable when no action in
/// either variant ever reads that RAM: the memory cells it mutates are
/// dead state. An *added* write must additionally be provably
/// fault-free — its address register is never written in the mutant
/// (so it always holds the initial zero, which addresses a non-empty
/// memory in range) and it drives no register write-back.
fn ram_write_unobservable(
    core: &Core,
    dec_a: &[DecodedInstruction],
    dec_b: &[DecodedInstruction],
    traffic_b: &StaticTraffic,
    added: bool,
    x: &OpuAction,
) -> bool {
    let reads_ram = |dec: &[DecodedInstruction]| {
        dec.iter()
            .flat_map(|d| d.actions.iter())
            .any(|a| a.opu == x.opu && a.op == "read")
    };
    if reads_ram(dec_a) || reads_ram(dec_b) || !x.dests.is_empty() {
        return false;
    }
    if added {
        let Some(opu) = core.datapath.opus().iter().find(|o| o.name() == x.opu) else {
            return false;
        };
        let Some(rf) = opu.inputs().first() else {
            return false;
        };
        let addr_key = (rf.clone(), *x.operand_regs.first().unwrap_or(&0));
        if opu.memory_size() == 0 || traffic_b.writes.contains_key(&addr_key) {
            return false;
        }
    }
    true
}

/// Bounded symbolic back-substitution over the cyclic program: proves
/// that two register observations (or two action outputs) are equal in
/// **every** frame, by structural recursion along writeback chains.
///
/// Times are absolute cycles relative to the current frame's start and
/// may go negative as the recursion follows chains into earlier frames.
/// Every rule is frame-uniform — it holds whether the referenced write
/// instances have executed or still lie in the zero-initialised
/// pre-history — because equal structure at equal frame depth sees
/// equal history:
///
/// * the *same write instance* (same site, same absolute landing) is
///   trivially equal to itself, and pre-history reads observe the same
///   initial zero on both sides;
/// * two *constants* (program or ROM) are equal when their values are,
///   at matching frame depth;
/// * two *pure ops* (ALU/MULT/ACU) are equal when op and immediate
///   match and every operand pair proves equal;
/// * two *RAM loads* are equal when their address values prove equal
///   and no write to that RAM issues between the two load instants.
///
/// Chains must never resolve through a register the mutation itself
/// touches (`forbidden`) — the proof is evaluated on the original
/// program and transfers to the mutant only if the mutant agrees on
/// every step.
/// Write sites per register: (landing position in `0..n`, word, action
/// index) for every action that writes it.
type WriteSites = BTreeMap<(String, u32), Vec<(i64, usize, usize)>>;

struct ValueProver<'a> {
    core: &'a Core,
    dec: &'a [DecodedInstruction],
    mc: &'a Microcode,
    n: i64,
    /// Per register: (landing position in `0..n`, word, action index).
    writes: WriteSites,
    /// Issue cycles of RAM writes, per RAM OPU.
    ram_writes: BTreeMap<String, Vec<i64>>,
    budget: std::cell::Cell<u32>,
}

impl<'a> ValueProver<'a> {
    fn new(core: &'a Core, dec: &'a [DecodedInstruction], mc: &'a Microcode) -> Self {
        let dp = &core.datapath;
        let n = dec.len() as i64;
        let mut writes: WriteSites = BTreeMap::new();
        let mut ram_writes: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        for (t, d) in dec.iter().enumerate() {
            for (i, a) in d.actions.iter().enumerate() {
                let Some(opu) = dp.opus().iter().find(|o| o.name() == a.opu) else {
                    continue;
                };
                if a.kind == OpuKind::Ram && a.op == "write" {
                    ram_writes.entry(a.opu.clone()).or_default().push(t as i64);
                }
                let lat = i64::from(opu.latency_of(&a.op).unwrap_or(1).max(1));
                for (rf, reg) in &a.dests {
                    writes.entry((rf.clone(), *reg)).or_default().push((
                        (t as i64 + lat) % n,
                        t,
                        i,
                    ));
                }
            }
        }
        ValueProver {
            core,
            dec,
            mc,
            n,
            writes,
            ram_writes,
            budget: std::cell::Cell::new(4096),
        }
    }

    fn spend(&self) -> bool {
        let left = self.budget.get();
        if left == 0 {
            return false;
        }
        self.budget.set(left - 1);
        true
    }

    /// Issue time of the action instance `(w, i)` whose write lands at
    /// absolute time `abs`.
    fn issue_of(&self, w: usize, i: usize, abs: i64) -> Option<i64> {
        let a = &self.dec[w].actions[i];
        let opu = self
            .core
            .datapath
            .opus()
            .iter()
            .find(|o| o.name() == a.opu)?;
        Some(abs - i64::from(opu.latency_of(&a.op).unwrap_or(1).max(1)))
    }

    /// Proves that the writes to `key` landing at cycles `land_a` and
    /// `land_b` (both within the current frame) store equal values in
    /// every frame.
    fn same_write(
        &self,
        key: &(String, u32),
        land_a: i64,
        land_b: i64,
        forbidden: &std::collections::BTreeSet<(String, u32)>,
    ) -> bool {
        let Some(sites) = self.writes.get(key) else {
            return false;
        };
        let find = |l: i64| sites.iter().find(|&&(l0, _, _)| l0 == l).copied();
        let (Some((l1, w1, i1)), Some((l2, w2, i2))) = (find(land_a), find(land_b)) else {
            return false;
        };
        let (Some(t1), Some(t2)) = (self.issue_of(w1, i1, l1), self.issue_of(w2, i2, l2)) else {
            return false;
        };
        self.same_output((w1, i1), t1, (w2, i2), t2, forbidden, 12)
    }

    /// The most recent write instance of `key` landing at or before
    /// absolute time `t`: `(absolute landing, word, action index)`.
    fn reach(&self, key: &(String, u32), t: i64) -> Option<(i64, usize, usize)> {
        self.writes
            .get(key)?
            .iter()
            .map(|&(l0, w, i)| {
                let q = (t - l0).div_euclid(self.n);
                (l0 + q * self.n, w, i)
            })
            .max_by_key(|&(abs, _, _)| abs)
    }

    /// Proves the value observed in `k1` at time `t1` equals `k2` at
    /// `t2`, in every frame.
    fn same_observed(
        &self,
        k1: &(String, u32),
        t1: i64,
        k2: &(String, u32),
        t2: i64,
        forbidden: &std::collections::BTreeSet<(String, u32)>,
        depth: u32,
    ) -> bool {
        if depth == 0 || !self.spend() || forbidden.contains(k1) || forbidden.contains(k2) {
            return false;
        }
        match (self.reach(k1, t1), self.reach(k2, t2)) {
            // Never-written registers hold their initial zero forever.
            (None, None) => true,
            (Some((abs1, w1, i1)), Some((abs2, w2, i2))) => {
                if k1 == k2 && abs1 == abs2 {
                    return true; // the same write instance (or the same pre-history zero)
                }
                // Both observations must sit at the same frame depth,
                // so partially-executed early frames agree too.
                if abs1.div_euclid(self.n) != abs2.div_euclid(self.n) {
                    return false;
                }
                let (Some(s1), Some(s2)) =
                    (self.issue_of(w1, i1, abs1), self.issue_of(w2, i2, abs2))
                else {
                    return false;
                };
                self.same_output((w1, i1), s1, (w2, i2), s2, forbidden, depth - 1)
            }
            _ => false, // one side written, the other always zero — unprovable
        }
    }

    /// Proves the outputs of two action instances equal: `(w, i)` at
    /// issue time `t` against another.
    fn same_output(
        &self,
        (w1, i1): (usize, usize),
        t1: i64,
        (w2, i2): (usize, usize),
        t2: i64,
        forbidden: &std::collections::BTreeSet<(String, u32)>,
        depth: u32,
    ) -> bool {
        if depth == 0 || !self.spend() {
            return false;
        }
        if (w1, i1) == (w2, i2) && t1 == t2 {
            return true;
        }
        let (x, y) = (&self.dec[w1].actions[i1], &self.dec[w2].actions[i2]);
        if x.opu != y.opu || x.op != y.op {
            return false;
        }
        let Some(opu) = self.core.datapath.opus().iter().find(|o| o.name() == x.opu) else {
            return false;
        };
        match x.kind {
            OpuKind::ProgConst | OpuKind::Rom => {
                let (vx, vy) = (
                    written_value(opu, x, self.mc),
                    written_value(opu, y, self.mc),
                );
                matches!((vx, vy), (Some(Some(a)), Some(Some(b))) if a == b)
            }
            OpuKind::Alu | OpuKind::Mult | OpuKind::Acu => {
                let arity = read_arity(x).min(x.operand_regs.len());
                if arity != read_arity(y).min(y.operand_regs.len()) || x.imm != y.imm {
                    return false;
                }
                (0..arity).all(|p| {
                    let Some(rf) = opu.inputs().get(p) else {
                        return false;
                    };
                    self.same_observed(
                        &(rf.clone(), x.operand_regs[p]),
                        t1,
                        &(rf.clone(), y.operand_regs[p]),
                        t2,
                        forbidden,
                        depth - 1,
                    )
                })
            }
            OpuKind::Ram if x.op == "read" => {
                let Some(rf) = opu.inputs().first() else {
                    return false;
                };
                if !self.same_observed(
                    &(rf.clone(), *x.operand_regs.first().unwrap_or(&0)),
                    t1,
                    &(rf.clone(), *y.operand_regs.first().unwrap_or(&0)),
                    t2,
                    forbidden,
                    depth - 1,
                ) {
                    return false;
                }
                // No write to this RAM may issue between the two loads.
                let (lo, hi) = (t1.min(t2), t1.max(t2));
                let sites = self
                    .ram_writes
                    .get(&x.opu)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                if hi - lo >= self.n {
                    return sites.is_empty();
                }
                sites.iter().all(|&s0| {
                    let inst = s0 + (hi - s0).div_euclid(self.n) * self.n;
                    inst <= lo
                })
            }
            _ => false, // Input pops and RAM writes are never provably equal across instances
        }
    }
}

/// Finds the earlier cycle whose identical RAM write the action at
/// cycle `t` replays: the same action must appear at some cycle
/// `c < t` in BOTH variants, no other write to the same RAM may issue
/// in `(c, t)`, and neither operand register may receive a write
/// landing in `(c, t]` — so the replay stores bit-identical address and
/// data, making it a no-op in every frame (including the first, since
/// `c` precedes `t` within the frame).
fn ram_write_replay(
    core: &Core,
    dec_a: &[DecodedInstruction],
    dec_b: &[DecodedInstruction],
    traffic_a: &StaticTraffic,
    traffic_b: &StaticTraffic,
    t: u32,
    x: &OpuAction,
) -> Option<u32> {
    let dp = &core.datapath;
    let opu = dp.opus().iter().find(|o| o.name() == x.opu)?;
    let c = (0..t).rev().find(|&c| {
        dec_a[c as usize].actions.contains(x) && dec_b[c as usize].actions.contains(x)
    })?;
    for cycle in c + 1..t {
        for dec in [dec_a, dec_b] {
            for action in &dec[cycle as usize].actions {
                if action.opu == x.opu && action.op == "write" {
                    return None;
                }
            }
        }
    }
    let arity = read_arity(x).min(x.operand_regs.len());
    for (port, &reg) in x.operand_regs.iter().take(arity).enumerate() {
        let key = (opu.inputs().get(port)?.clone(), reg);
        for traffic in [traffic_a, traffic_b] {
            if let Some(timeline) = traffic.writes.get(&key) {
                if timeline.iter().any(|w| w.land > c && w.land <= t) {
                    return None;
                }
            }
        }
    }
    Some(c)
}

/// Tries to *prove* a mutated microcode behaviourally equal to the
/// original, by cyclic dead-store and reaching-constant analysis over
/// the decoded programs. Returns the witness on success, `None` when no
/// proof is found (the caller must then hunt the mutant differentially).
///
/// The proof reduces every per-word difference to a set of register
/// [`WriteImpact`]s — only pure function units (ALU/MULT/ACU/constants/
/// ROM) qualify; any change to RAM, I/O, or an unknown unit voids the
/// proof. Each impact is then discharged by one of:
///
/// * **dead store** — no instruction reads the register between this
///   write's landing and the next overwrite (cyclically); or
/// * **redundant constant** — the added/removed write stores exactly
///   the constant the preceding write (earlier in the same frame, so
///   the first frame behaves identically too) already put there.
fn microcode_witness(compiled: &Compiled, mutated: &Microcode) -> Option<String> {
    let core = &compiled.core;
    let original: &Microcode = &compiled.microcode;
    if original.words.len() != mutated.words.len() || original.rom_image != mutated.rom_image {
        return None;
    }
    let n = u32::try_from(original.words.len()).ok()?;
    let dec_a: Vec<DecodedInstruction> = original
        .words
        .iter()
        .map(|w| decode(w, &original.layout, original.word_format))
        .collect::<Result<_, _>>()
        .ok()?;
    let dec_b: Vec<DecodedInstruction> = mutated
        .words
        .iter()
        .map(|w| decode(w, &mutated.layout, mutated.word_format))
        .collect::<Result<_, _>>()
        .ok()?;
    let traffic_a = static_traffic(core, original, &dec_a)?;
    let traffic_b = static_traffic(core, mutated, &dec_b)?;
    // Liveness is judged against the union of both variants' read sets:
    // sound for whichever variant an impact concerns.
    let mut reads = traffic_a.reads.clone();
    for (key, cycles) in &traffic_b.reads {
        reads
            .entry(key.clone())
            .or_default()
            .extend(cycles.iter().copied());
    }
    let dp = &core.datapath;
    let pure = |kind: OpuKind| {
        matches!(
            kind,
            OpuKind::Alu | OpuKind::Mult | OpuKind::Acu | OpuKind::ProgConst | OpuKind::Rom
        )
    };
    let mut impacts: Vec<((String, u32), u32, WriteImpact)> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for t in 0..n as usize {
        let index = |d: &'_ DecodedInstruction| -> BTreeMap<String, OpuAction> {
            d.actions
                .iter()
                .map(|a| (a.opu.clone(), a.clone()))
                .collect()
        };
        let map_a = index(&dec_a[t]);
        let map_b = index(&dec_b[t]);
        if map_a.len() != dec_a[t].actions.len() || map_b.len() != dec_b[t].actions.len() {
            return None; // duplicate OPU in one word — malformed
        }
        let names: std::collections::BTreeSet<&String> = map_a.keys().chain(map_b.keys()).collect();
        for name in names {
            let (a, b) = (map_a.get(name), map_b.get(name));
            if a == b {
                continue;
            }
            let opu = dp.opus().iter().find(|o| o.name() == *name)?;
            let normal = |x: &OpuAction| {
                let arity = read_arity(x).min(x.operand_regs.len());
                (
                    x.op.clone(),
                    x.operand_regs[..arity].to_vec(),
                    x.dests.clone(),
                    x.imm,
                )
            };
            if let (Some(a), Some(b)) = (a, b) {
                if normal(a) == normal(b) {
                    continue; // differs only in unread operand ports
                }
            }
            // An added or dropped RAM write can be an idempotent replay
            // of an identical write earlier in the same frame: with the
            // address and data registers untouched in between and no
            // other write to the same RAM in between, the second write
            // stores exactly what the first already stored, so RAM
            // state is identical at every cycle of every frame.
            if a.is_none() != b.is_none() {
                let x = a.or(b).expect("one side present");
                if x.kind == OpuKind::Ram && x.op == "write" {
                    let side = if a.is_none() { "added" } else { "dropped" };
                    if let Some(c) =
                        ram_write_replay(core, &dec_a, &dec_b, &traffic_a, &traffic_b, t as u32, x)
                    {
                        notes.push(format!(
                            "{side} RAM write on {name} at cycle {t} is an idempotent \
                             replay of the identical write at cycle {c} (address and \
                             data registers unchanged in between)"
                        ));
                        continue;
                    }
                    if ram_write_unobservable(core, &dec_a, &dec_b, &traffic_b, a.is_none(), x) {
                        notes.push(format!(
                            "{side} RAM write on {name} at cycle {t} targets a memory \
                             no action in either variant ever reads (dead state, \
                             in-range zero address)"
                        ));
                        continue;
                    }
                    return None;
                }
            }
            // Same op, read operands, and immediate ⇒ both variants
            // compute the same (possibly dynamic) value. A differing
            // operand port still qualifies when both registers provably
            // hold the same known constant at this cycle — in the first
            // frame and in steady state.
            let same_value = match (a, b) {
                (Some(a), Some(b)) => {
                    let arity_a = read_arity(a).min(a.operand_regs.len());
                    let arity_b = read_arity(b).min(b.operand_regs.len());
                    a.op == b.op
                        && a.imm == b.imm
                        && arity_a == arity_b
                        && (0..arity_a).all(|port| {
                            if a.operand_regs[port] == b.operand_regs[port] {
                                return true;
                            }
                            let Some(rf) = opu.inputs().get(port) else {
                                return false;
                            };
                            let va = read_value(
                                &traffic_a,
                                &(rf.clone(), a.operand_regs[port]),
                                t as u32,
                            );
                            let vb = read_value(
                                &traffic_b,
                                &(rf.clone(), b.operand_regs[port]),
                                t as u32,
                            );
                            match (va, vb) {
                                (Some(x), Some(y)) if x == y => {
                                    notes.push(format!(
                                        "{name} port {port} at cycle {t} redirected from \
                                         {rf}[{}] to {rf}[{}], but both provably hold the \
                                         same known value at every read (first frame {}, \
                                         steady state {})",
                                        a.operand_regs[port], b.operand_regs[port], x.0, x.1
                                    ));
                                    true
                                }
                                _ => false,
                            }
                        })
                }
                _ => false,
            };
            // A matched pair with an identical value/side-effect
            // signature (same op, operands, immediate — only the
            // register write set differs) is safe for ANY unit: the
            // FIFO pop, RAM access, or error path is the same on both
            // sides. Every other difference needs a pure function unit.
            if !same_value && !a.map_or(b.is_some_and(|x| pure(x.kind)), |x| pure(x.kind)) {
                return None; // RAM / I/O / unknown unit changed — no proof
            }
            let dests = |x: Option<&OpuAction>| -> BTreeMap<(String, u32), (u32, Option<i64>)> {
                x.map(|x| {
                    let lat = opu.latency_of(&x.op).unwrap_or(1).max(1);
                    let value = written_value(opu, x, original).unwrap_or(None);
                    x.dests
                        .iter()
                        .map(|(rf, reg)| ((rf.clone(), *reg), ((t as u32 + lat) % n, value)))
                        .collect()
                })
                .unwrap_or_default()
            };
            let (da, db) = (dests(a), dests(b));
            let keys: std::collections::BTreeSet<&(String, u32)> =
                da.keys().chain(db.keys()).collect();
            for key in keys {
                match (da.get(key), db.get(key)) {
                    (Some(&(land_a, va)), Some(&(land_b, vb))) => {
                        if land_a == land_b {
                            match (va, vb) {
                                _ if same_value => {}
                                (Some(x), Some(y)) if x == y => {}
                                _ => impacts.push((
                                    key.clone(),
                                    land_a,
                                    WriteImpact::ValueChanged { old: va, new: vb },
                                )),
                            }
                        } else {
                            impacts.push((key.clone(), land_a, WriteImpact::Removed { value: va }));
                            impacts.push((key.clone(), land_b, WriteImpact::Added { value: vb }));
                        }
                    }
                    (Some(&(land, value)), None) => {
                        impacts.push((key.clone(), land, WriteImpact::Removed { value }));
                    }
                    (None, Some(&(land, value))) => {
                        impacts.push((key.clone(), land, WriteImpact::Added { value }));
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
    }
    let mut witness: Vec<String> = Vec::new();
    let impacted: std::collections::BTreeSet<(String, u32)> =
        impacts.iter().map(|(k, _, _)| k.clone()).collect();
    let provers = (!impacts.is_empty()).then(|| {
        (
            ValueProver::new(core, &dec_a, original),
            ValueProver::new(core, &dec_b, mutated),
        )
    });
    for ((rf, reg), land, impact) in impacts {
        let key = (rf.clone(), reg);
        let timeline = match impact {
            WriteImpact::Added { .. } => traffic_b.writes.get(&key)?,
            _ => traffic_a.writes.get(&key)?,
        };
        let read_cycles = reads.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        if write_is_dead(read_cycles, timeline, land, n) {
            witness.push(format!(
                "write to {rf}[{reg}] landing at cycle {land} is a dead store \
                 (no read before the next overwrite)"
            ));
            continue;
        }
        match impact {
            WriteImpact::ValueChanged {
                old: Some(o),
                new: Some(v),
            } => {
                // Known-constant delta that is a multiple of the ACU
                // region size: prove it is absorbed by modulo
                // addressing (see [`congruence_absorbed`]).
                let region = i64::from(original.region_size);
                let delta = v - o;
                if region >= 2
                    && original.region_size.is_power_of_two()
                    && delta != 0
                    && delta % region == 0
                {
                    let sites = congruence_absorbed(
                        core,
                        &dec_a,
                        &dec_b,
                        &traffic_a,
                        n,
                        ((rf.clone(), reg), land),
                    )?;
                    witness.push(format!(
                        "constant delta {delta} on {rf}[{reg}] landing at cycle {land} is \
                         a multiple of the ACU region size {region} and is provably \
                         absorbed by modulo addressing ({sites} base-port read(s) mask it)"
                    ));
                    continue;
                }
                return None;
            }
            WriteImpact::ValueChanged { .. } => return None,
            WriteImpact::Removed { value } | WriteImpact::Added { value } => {
                // Redundant store: the cyclically preceding write must
                // land *earlier in the same frame* (no wrap), so even
                // the very first frame sees the same value at every
                // read. It qualifies when it stores the same known
                // constant, or when bounded value numbering proves the
                // two writes compute equal (possibly dynamic) values.
                let prev = timeline
                    .iter()
                    .filter(|w| w.land < land)
                    .max_by_key(|w| w.land)?;
                if let (Some(v), true) = (value, prev.value == value) {
                    witness.push(format!(
                        "write of constant {v} to {rf}[{reg}] at cycle {land} is redundant \
                         (the write landing at cycle {} stores the same constant)",
                        prev.land
                    ));
                    continue;
                }
                let (prover_a, prover_b) = provers.as_ref()?;
                let prover = match impact {
                    WriteImpact::Added { .. } => prover_b,
                    _ => prover_a,
                };
                if prover.same_write(&key, i64::from(land), i64::from(prev.land), &impacted) {
                    witness.push(format!(
                        "write to {rf}[{reg}] landing at cycle {land} is a redundant \
                         store (bounded value numbering proves the write landing at \
                         cycle {} stores an equal value in every frame)",
                        prev.land
                    ));
                    continue;
                }
                return None;
            }
        }
    }
    witness.extend(notes);
    if witness.is_empty() {
        return Some(
            "the mutation only toggles state no executor rule reads \
             (the decoded programs are semantically identical)"
                .to_owned(),
        );
    }
    witness.sort();
    witness.dedup();
    Some(witness.join("; "))
}

/// The audit table: one cell per `(seed, app, kind)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// All cells, in deterministic (seed, app, kind) order.
    pub cells: Vec<FaultCell>,
}

impl FaultReport {
    /// Detected mutants.
    pub fn detected(&self) -> impl Iterator<Item = &FaultCell> {
        self.cells.iter().filter(|c| c.outcome.is_detected())
    }

    /// Witnessed-benign mutants.
    pub fn benign(&self) -> impl Iterator<Item = &FaultCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, FaultOutcome::Benign { .. }))
    }

    /// Silently surviving mutants — each one a fleet bug.
    pub fn survived(&self) -> impl Iterator<Item = &FaultCell> {
        self.cells.iter().filter(|c| c.outcome.is_survived())
    }

    /// Cells that could not be armed.
    pub fn skipped(&self) -> impl Iterator<Item = &FaultCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, FaultOutcome::Skipped { .. }))
    }

    /// Kill rate over armed, non-benign mutants:
    /// `detected / (detected + survived)`, `None` when nothing was armed.
    pub fn kill_rate(&self) -> Option<f64> {
        let detected = self.detected().count();
        let survived = self.survived().count();
        let armed = detected + survived;
        (armed > 0).then(|| detected as f64 / armed as f64)
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>9} {:>7} {:>9} {:>8}",
            "kind", "cells", "detected", "benign", "survived", "skipped"
        )?;
        for kind in MutationKind::ALL {
            let of_kind: Vec<&FaultCell> = self.cells.iter().filter(|c| c.kind == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>6} {:>9} {:>7} {:>9} {:>8}",
                kind.name(),
                of_kind.len(),
                of_kind.iter().filter(|c| c.outcome.is_detected()).count(),
                of_kind
                    .iter()
                    .filter(|c| matches!(c.outcome, FaultOutcome::Benign { .. }))
                    .count(),
                of_kind.iter().filter(|c| c.outcome.is_survived()).count(),
                of_kind
                    .iter()
                    .filter(|c| matches!(c.outcome, FaultOutcome::Skipped { .. }))
                    .count(),
            )?;
        }
        for cell in self.survived() {
            writeln!(
                f,
                "SURVIVED seed={:#x} app={} kind={}: {}",
                cell.seed,
                cell.app,
                cell.kind,
                match &cell.outcome {
                    FaultOutcome::Survived { detail } => detail.as_str(),
                    _ => unreachable!(),
                }
            )?;
        }
        let rate = self
            .kill_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".to_owned());
        write!(
            f,
            "{} cells: {} detected, {} benign, {} survived, {} skipped; kill rate {rate}",
            self.cells.len(),
            self.detected().count(),
            self.benign().count(),
            self.survived().count(),
            self.skipped().count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_audit_kills_or_witnesses_everything() {
        let report = FaultAudit::new()
            .seed_range(0..4)
            .app("fir4", crate::apps::fir(4))
            .run();
        assert_eq!(report.cells.len(), 16);
        assert_eq!(report.survived().count(), 0, "{report}");
        // The audit is armed: at least one detection happened.
        assert!(report.detected().count() > 0, "{report}");
    }

    #[test]
    fn audit_is_deterministic_across_thread_counts() {
        let audit = FaultAudit::new()
            .seed_range(0..3)
            .app("sop4", crate::apps::sum_of_products(4));
        let serial = audit.clone().threads(1).run();
        let parallel = audit.threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn benign_outcomes_state_a_witness() {
        let report = FaultAudit::new()
            .seed_range(0..16)
            .app("fir4", crate::apps::fir(4))
            .kinds([MutationKind::BitFlip])
            .run();
        for cell in report.benign() {
            match &cell.outcome {
                FaultOutcome::Benign { witness } => assert!(!witness.is_empty()),
                _ => unreachable!(),
            }
        }
        assert_eq!(report.survived().count(), 0, "{report}");
    }
}
