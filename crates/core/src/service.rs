//! `CompileService` — a fault-tolerant, concurrency-bounded compile
//! executor over a shared [`CompileSession`].
//!
//! The ROADMAP's "millions of users" posture: many tenants submit
//! compile requests against shared cores, and the service's job is to
//! stay predictable under overload, slow disks and compiler bugs
//! rather than to make any single compile fast. Plain std threads and
//! a mutex/condvar queue — no async runtime:
//!
//! * **Admission control** — the queue is bounded; a submit against a
//!   full queue returns [`Rejected::Saturated`] *immediately* instead
//!   of growing an unbounded backlog. Callers see backpressure, the
//!   process sees bounded memory.
//! * **Deadlines as fuel** — a request's deadline is expressed in the
//!   deterministic fuel units of PR 6 ([`CompileOptions::fuel`]), not
//!   wall-clock, so an overloaded service *degrades* (exact →
//!   heuristic, search truncation, reported as [`Degradation`]) instead
//!   of stalling, and a replay behaves identically. The per-request
//!   [`dspcc_sched::CancelToken`] covers the caller-abandons case
//!   ([`Ticket::cancel`]).
//! * **Retry with seeded backoff** — a compile that failed on a
//!   *transient* cache I/O error ([`CompileError::CacheIo`], surfaced
//!   under [`crate::TransientPolicy::Fail`]) is retried in-worker with
//!   exponential backoff jittered from a [`SplitMix64`] substream of
//!   the job id. Deterministic failures are not retried — they would
//!   fail identically.
//! * **Panic containment** — each attempt runs under `catch_unwind`
//!   (the PR 6 quarantine pattern): a compiler bug takes down one
//!   request as [`CompileError::Panicked`], not the worker thread.
//!
//! Every request resolves to exactly one structured [`ServiceOutcome`];
//! aggregate counters land in [`ServiceStats`].
//!
//! ```
//! use std::sync::Arc;
//! use dspcc::service::{CompileService, ServiceConfig, ServiceOutcome};
//! use dspcc::{cores, CompileOptions, CompileSession};
//!
//! let service = CompileService::new(Arc::new(CompileSession::new()), ServiceConfig::default());
//! let core = Arc::new(cores::tiny_core());
//! let src = "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);";
//! let ticket = service
//!     .submit(&core, src, CompileOptions::default())
//!     .expect("empty queue admits");
//! match ticket.wait() {
//!     ServiceOutcome::Served { compiled, .. } => assert!(compiled.microcode.len() > 0),
//!     other => panic!("{other:?}"),
//! }
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dspcc_arch::SplitMix64;
use dspcc_sched::{CancelToken, Degradation};

use crate::pipeline::{CompileError, Compiled, Core};
use crate::session::{CompileOptions, CompileSession};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing compiles.
    pub workers: usize,
    /// Maximum queued (admitted, not yet running) requests; a submit
    /// beyond this is rejected.
    pub queue_depth: usize,
    /// Retry attempts (beyond the first) for transient cache-I/O
    /// failures.
    pub retries: u32,
    /// Seeds the per-job backoff jitter substreams.
    pub backoff_seed: u64,
    /// Base unit of the exponential backoff: attempt *n* sleeps
    /// `base << n` plus jitter. Kept small — it bounds how long a
    /// worker is parked on a sick disk.
    pub backoff_base: Duration,
    /// Fuel ceiling imposed on every request ("the service-level
    /// deadline"); a request's own [`CompileOptions::fuel`] can only
    /// lower it. `None` = no service-level ceiling.
    pub deadline_fuel: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 16,
            retries: 2,
            backoff_seed: 0xD5FC,
            backoff_base: Duration::from_millis(1),
            deadline_fuel: None,
        }
    }
}

/// Why a submit was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is full; back off and resubmit.
    Saturated {
        /// The depth the queue was at (== configured bound).
        depth: usize,
    },
    /// The service is shutting down.
    ShutDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Saturated { depth } => {
                write!(f, "queue saturated at depth {depth}")
            }
            Rejected::ShutDown => write!(f, "service is shut down"),
        }
    }
}

/// How one admitted request ended.
#[derive(Debug)]
pub enum ServiceOutcome {
    /// Compiled successfully.
    Served {
        /// The full compile result.
        compiled: Box<Compiled>,
        /// Session-cache stage hits (memo + disk) for this compile.
        cache_hits: u32,
        /// The subset of `cache_hits` deserialized from the disk tier.
        disk_hits: u32,
        /// `Some` when the deadline fuel truncated the search and a
        /// degraded (still valid) schedule was served.
        degradation: Option<Degradation>,
        /// Transient-I/O retries spent before this attempt succeeded.
        retries: u32,
    },
    /// Compiled to a typed error (after exhausting any retries).
    Failed(CompileError),
    /// The service shut down before a worker picked the request up.
    ShutDown,
}

/// Monotonic service counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Submits refused by admission control.
    pub rejected: u64,
    /// Requests that ended [`ServiceOutcome::Served`].
    pub served: u64,
    /// Requests that ended [`ServiceOutcome::Failed`].
    pub failed: u64,
    /// Served requests that carried a [`Degradation`] report.
    pub degraded: u64,
    /// Individual retry attempts spent on transient cache I/O.
    pub retries: u64,
    /// High-water mark of the queue depth.
    pub peak_queue: u64,
}

#[derive(Debug, Default)]
struct StatsCells {
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
    retries: AtomicU64,
    peak_queue: AtomicU64,
}

struct Job {
    id: u64,
    core: Arc<Core>,
    source: String,
    options: CompileOptions,
    slot: Arc<Slot>,
}

/// The rendezvous between a worker and the [`Ticket`] holder.
struct Slot {
    outcome: Mutex<Option<ServiceOutcome>>,
    done: Condvar,
    cancel: CancelToken,
}

impl Slot {
    fn fill(&self, outcome: ServiceOutcome) {
        *self.outcome.lock().expect("slot lock") = Some(outcome);
        self.done.notify_all();
    }
}

/// Handle to one admitted request.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

impl Ticket {
    /// The job id (also names the job's backoff substream).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Raises the request's [`CancelToken`]. A running compile aborts
    /// cooperatively at the next stage boundary / search barrier and
    /// resolves [`ServiceOutcome::Failed`]`(Cancelled)`; a queued one
    /// resolves the same way when a worker picks it up.
    pub fn cancel(&self) {
        self.slot.cancel.cancel();
    }

    /// Blocks until the request resolves.
    pub fn wait(self) -> ServiceOutcome {
        let mut guard = self.slot.outcome.lock().expect("slot lock");
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.slot.done.wait(guard).expect("slot lock");
        }
    }
}

struct Inner {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    config: ServiceConfig,
    session: Arc<CompileSession>,
    stats: StatsCells,
    next_id: AtomicU64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// `true` until [`CompileService::start`]; workers idle while set.
    paused: bool,
    shutdown: bool,
}

/// See the [module docs](self).
pub struct CompileService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl CompileService {
    /// A running service over `session` (workers start immediately).
    pub fn new(session: Arc<CompileSession>, config: ServiceConfig) -> Self {
        CompileService::build(session, config, false)
    }

    /// A service whose workers idle until [`CompileService::start`] —
    /// lets tests fill the queue deterministically and observe
    /// admission control without racing the consumers.
    pub fn new_paused(session: Arc<CompileSession>, config: ServiceConfig) -> Self {
        CompileService::build(session, config, true)
    }

    fn build(session: Arc<CompileSession>, config: ServiceConfig, paused: bool) -> Self {
        let worker_count = config.workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            config,
            session,
            stats: StatsCells::default(),
            next_id: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|n| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dspcc-service-{n}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        CompileService { inner, workers }
    }

    /// Releases the workers of a [`CompileService::new_paused`] service.
    pub fn start(&self) {
        self.inner.queue.lock().expect("queue lock").paused = false;
        self.inner.work_ready.notify_all();
    }

    /// Submits a compile of `source` for `core`. Admission control
    /// happens here: a full queue refuses with [`Rejected::Saturated`]
    /// and the request is *not* enqueued.
    pub fn submit(
        &self,
        core: &Arc<Core>,
        source: &str,
        options: CompileOptions,
    ) -> Result<Ticket, Rejected> {
        let mut queue = self.inner.queue.lock().expect("queue lock");
        if queue.shutdown {
            self.inner.stats.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(Rejected::ShutDown);
        }
        if queue.jobs.len() >= self.inner.config.queue_depth {
            self.inner.stats.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(Rejected::Saturated {
                depth: queue.jobs.len(),
            });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(Slot {
            outcome: Mutex::new(None),
            done: Condvar::new(),
            cancel: CancelToken::new(),
        });
        // The service deadline is a fuel ceiling: the request's own
        // budget may only tighten it.
        let mut options = options;
        options.fuel = match (options.fuel, self.inner.config.deadline_fuel) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        queue.jobs.push_back(Job {
            id,
            core: Arc::clone(core),
            source: source.to_owned(),
            options,
            slot: Arc::clone(&slot),
        });
        let depth = queue.jobs.len() as u64;
        self.inner
            .stats
            .peak_queue
            .fetch_max(depth, Ordering::SeqCst);
        self.inner.stats.admitted.fetch_add(1, Ordering::SeqCst);
        drop(queue);
        self.inner.work_ready.notify_one();
        Ok(Ticket { id, slot })
    }

    /// Current queue depth (admitted, not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue lock").jobs.len()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        ServiceStats {
            admitted: s.admitted.load(Ordering::SeqCst),
            rejected: s.rejected.load(Ordering::SeqCst),
            served: s.served.load(Ordering::SeqCst),
            failed: s.failed.load(Ordering::SeqCst),
            degraded: s.degraded.load(Ordering::SeqCst),
            retries: s.retries.load(Ordering::SeqCst),
            peak_queue: s.peak_queue.load(Ordering::SeqCst),
        }
    }

    /// The shared session (and through it the disk cache, if any).
    pub fn session(&self) -> &Arc<CompileSession> {
        &self.inner.session
    }

    /// Stops accepting work, drains nothing: queued jobs resolve
    /// [`ServiceOutcome::ShutDown`], running compiles are cancelled,
    /// workers are joined. Called by `Drop`; explicit form for tests.
    pub fn shutdown(&mut self) {
        let drained: Vec<Job> = {
            let mut queue = self.inner.queue.lock().expect("queue lock");
            queue.shutdown = true;
            queue.jobs.drain(..).collect()
        };
        for job in drained {
            job.slot.cancel.cancel();
            job.slot.fill(ServiceOutcome::ShutDown);
        }
        self.inner.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for CompileService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileService")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth())
            .field("stats", &self.stats())
            .finish()
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if queue.shutdown {
                    return;
                }
                if !queue.paused {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                }
                queue = inner.work_ready.wait(queue).expect("queue lock");
            }
        };
        let outcome = run_job(inner, &job);
        match &outcome {
            ServiceOutcome::Served { degradation, .. } => {
                inner.stats.served.fetch_add(1, Ordering::SeqCst);
                if degradation.is_some() {
                    inner.stats.degraded.fetch_add(1, Ordering::SeqCst);
                }
            }
            ServiceOutcome::Failed(_) => {
                inner.stats.failed.fetch_add(1, Ordering::SeqCst);
            }
            ServiceOutcome::ShutDown => {}
        }
        job.slot.fill(outcome);
    }
}

/// Executes one job: compile under `catch_unwind`, retrying transient
/// cache-I/O failures with seeded exponential backoff.
fn run_job(inner: &Inner, job: &Job) -> ServiceOutcome {
    let mut backoff = SplitMix64::substream(inner.config.backoff_seed, job.id);
    let mut attempt = 0u32;
    loop {
        if job.slot.cancel.is_cancelled() {
            return ServiceOutcome::Failed(CompileError::Cancelled);
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            inner.session.compile_cancellable(
                &job.core,
                &job.source,
                &job.options,
                &job.slot.cancel,
            )
        }));
        let error = match result {
            Ok(Ok(compiled)) => {
                let stats = compiled.stats;
                return ServiceOutcome::Served {
                    compiled: Box::new(compiled),
                    cache_hits: stats.cache_hits,
                    disk_hits: stats.disk_hits,
                    degradation: stats.degradation,
                    retries: attempt,
                };
            }
            Ok(Err(e)) => e,
            Err(payload) => CompileError::Panicked(panic_message(&payload)),
        };
        let transient = matches!(error, CompileError::CacheIo(_));
        if !transient || attempt >= inner.config.retries {
            return ServiceOutcome::Failed(error);
        }
        inner.stats.retries.fetch_add(1, Ordering::SeqCst);
        // Exponential backoff with seeded jitter: base << attempt, plus
        // 0..=base of noise so retriers against one sick disk spread out.
        let base = inner.config.backoff_base;
        let jitter_ns = if base.is_zero() {
            0
        } else {
            u64::from(backoff.range(0, 1000)) * (base.as_nanos() as u64 / 1000)
        };
        std::thread::sleep(base * (1 << attempt.min(16)) + Duration::from_nanos(jitter_ns));
        attempt += 1;
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;

    const SRC: &str = "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);";

    #[test]
    fn serves_a_simple_request() {
        let service =
            CompileService::new(Arc::new(CompileSession::new()), ServiceConfig::default());
        let core = Arc::new(cores::tiny_core());
        let ticket = service
            .submit(&core, SRC, CompileOptions::default())
            .expect("admitted");
        match ticket.wait() {
            ServiceOutcome::Served {
                compiled, retries, ..
            } => {
                assert!(!compiled.microcode.is_empty());
                assert_eq!(retries, 0);
            }
            other => panic!("expected Served, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.served, stats.rejected), (1, 1, 0));
    }

    #[test]
    fn saturated_queue_rejects_at_the_door() {
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 3,
            ..ServiceConfig::default()
        };
        let service = CompileService::new_paused(Arc::new(CompileSession::new()), config);
        let core = Arc::new(cores::tiny_core());
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| {
                service
                    .submit(&core, SRC, CompileOptions::default())
                    .expect("under the bound")
            })
            .collect();
        assert_eq!(service.queue_depth(), 3);
        match service.submit(&core, SRC, CompileOptions::default()) {
            Err(Rejected::Saturated { depth }) => assert_eq!(depth, 3),
            other => panic!("expected saturation, got {other:?}"),
        }
        service.start();
        for ticket in tickets {
            assert!(matches!(ticket.wait(), ServiceOutcome::Served { .. }));
        }
        let stats = service.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_queue, 3);
    }

    #[test]
    fn cancelled_ticket_fails_typed() {
        let service =
            CompileService::new_paused(Arc::new(CompileSession::new()), ServiceConfig::default());
        let core = Arc::new(cores::tiny_core());
        let ticket = service
            .submit(&core, SRC, CompileOptions::default())
            .expect("admitted");
        ticket.cancel();
        service.start();
        match ticket.wait() {
            ServiceOutcome::Failed(CompileError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_resolves_queued_tickets() {
        let mut service =
            CompileService::new_paused(Arc::new(CompileSession::new()), ServiceConfig::default());
        let core = Arc::new(cores::tiny_core());
        let ticket = service
            .submit(&core, SRC, CompileOptions::default())
            .expect("admitted");
        service.shutdown();
        assert!(matches!(ticket.wait(), ServiceOutcome::ShutDown));
        assert!(matches!(
            service.submit(&core, SRC, CompileOptions::default()),
            Err(Rejected::ShutDown)
        ));
    }

    #[test]
    fn parse_error_is_a_typed_failure() {
        let service =
            CompileService::new(Arc::new(CompileSession::new()), ServiceConfig::default());
        let core = Arc::new(cores::tiny_core());
        let ticket = service
            .submit(&core, "this is not a program", CompileOptions::default())
            .expect("admitted");
        match ticket.wait() {
            ServiceOutcome::Failed(CompileError::Parse(_)) => {}
            other => panic!("expected parse failure, got {other:?}"),
        }
        assert_eq!(service.stats().failed, 1);
    }

    #[test]
    fn transient_cache_io_retries_with_backoff_then_serves() {
        use crate::cache::{ChaosBackend, DiskCache, IoFaultKind, StdFs, TransientPolicy};
        let root = std::env::temp_dir().join(format!(
            "dspcc-service-retry-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&root).unwrap();
        let chaos = Arc::new(
            ChaosBackend::new(Arc::new(StdFs), IoFaultKind::ReadError, 21)
                .with_read_error_budget(2),
        );
        let cache =
            Arc::new(DiskCache::with_backend(&root, chaos).transient_policy(TransientPolicy::Fail));
        let config = ServiceConfig {
            workers: 1,
            retries: 3,
            ..ServiceConfig::default()
        };
        let service = CompileService::new(Arc::new(CompileSession::with_disk_cache(cache)), config);
        let core = Arc::new(cores::tiny_core());
        let ticket = service
            .submit(&core, SRC, CompileOptions::default())
            .expect("admitted");
        match ticket.wait() {
            ServiceOutcome::Served { retries, .. } => {
                assert!(retries >= 1, "first disk read always faults → must retry");
            }
            other => panic!("expected Served after retries, got {other:?}"),
        }
        assert!(service.stats().retries >= 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn deadline_fuel_ceiling_tightens_request_fuel() {
        let config = ServiceConfig {
            deadline_fuel: Some(10),
            ..ServiceConfig::default()
        };
        let service = CompileService::new(Arc::new(CompileSession::new()), config);
        let core = Arc::new(cores::tiny_core());
        // Service ceiling applies even when the request asks for more.
        let options = CompileOptions {
            fuel: Some(1_000_000),
            exact: true,
            ..CompileOptions::default()
        };
        let ticket = service.submit(&core, SRC, options).expect("admitted");
        match ticket.wait() {
            // Either the tiny program fits in 10 units, or the search
            // was truncated and reported — both valid; what must hold
            // is that the compile resolved (no stall) with a schedule.
            ServiceOutcome::Served { compiled, .. } => {
                assert!(compiled.schedule.length() > 0);
            }
            other => panic!("expected Served, got {other:?}"),
        }
    }
}
