//! The compiler pipeline of figure 1b.
//!
//! ```text
//! application source
//!   → RT generation                      (dspcc-rtgen::lower)
//!   → RT modification                    (merging + ISA conflicts)
//!   → scheduling & instruction encoding  (dspcc-sched, dspcc-encode)
//! ```
//!
//! Failures at any stage — unroutable values, missed cycle budgets,
//! register-file overflows — are *feasibility feedback*: "if this does not
//! result in a feasible solution an iteration cycle is required in which
//! the source must be improved" (section 4). The error type is therefore
//! deliberately rich.
//!
//! The pipeline itself lives in [`crate::stages`] as explicit,
//! individually-invokable stage functions; [`Compiler`] is a thin builder
//! that runs them through a fresh [`crate::CompileSession`] per call. Use
//! a long-lived session (or the [`crate::explore`] driver) when compiling
//! many variants of the same application — stage artifacts are then
//! reused across compiles.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use dspcc_arch::{Controller, Datapath};
use dspcc_dfg::Dfg;
use dspcc_encode::{Microcode, RegAssignment};
use dspcc_isa::{Classification, CoverStrategy, InstructionSet};
use dspcc_num::WordFormat;
use dspcc_rtgen::Lowering;
use dspcc_sched::deps::DependenceGraph;
use dspcc_sched::folding::LoopEdge;
use dspcc_sched::folding::{fold_schedule_with_restarts, FoldError, FoldedSchedule};
use dspcc_sched::list::Priority;
use dspcc_sched::report::OccupationReport;
use dspcc_sched::Schedule;
use dspcc_sim::CoreSim;

use crate::session::{CompileOptions, CompileSession};

/// An in-house core: datapath + controller + instruction set (+ word
/// format) — "the core is defined by the presented datapath, the
/// controller and the instruction set" (section 7).
#[derive(Debug, Clone)]
pub struct Core {
    /// Human-readable name.
    pub name: String,
    /// The datapath (figure 3 instantiation).
    pub datapath: Datapath,
    /// The controller (figure 4 instantiation).
    pub controller: Controller,
    /// Datapath word format.
    pub format: WordFormat,
    /// RT classification; `None` derives one automatically when an
    /// instruction set is given.
    pub classification: Option<Classification>,
    /// The instruction set; `None` means "fully horizontal" (datapath
    /// conflicts only).
    pub instruction_set: Option<InstructionSet>,
    /// Clique-cover strategy for the artificial resources.
    pub cover: CoverStrategy,
}

/// Compilation failure, wrapping each stage's error with the stage name.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Source does not parse.
    Parse(dspcc_dfg::ParseError),
    /// Source does not analyse.
    Sema(dspcc_dfg::SemaError),
    /// RT generation failed (unroutable / missing units / RAM overflow).
    Lower(dspcc_rtgen::LowerError),
    /// Dependence analysis failed.
    Deps(String),
    /// No schedule within the budget.
    Schedule(dspcc_sched::SchedError),
    /// Register allocation failed.
    RegAlloc(dspcc_encode::RegAllocError),
    /// Instruction encoding failed.
    Encode(dspcc_encode::EncodeError),
    /// The schedule exceeds the controller's program memory.
    ProgramTooLong {
        /// Instructions needed.
        needed: u32,
        /// Program memory depth.
        available: u32,
    },
    /// The caller's [`dspcc_sched::CancelToken`] was raised; the partial
    /// result was discarded and nothing was cached.
    Cancelled,
    /// A pipeline stage panicked and the panic was contained at a
    /// quarantine boundary (fleet cell, design-space point). The payload
    /// is the panic message — a compiler bug to be reported, not a user
    /// error.
    Panicked(String),
    /// The persistent artifact cache hit a *transient* I/O error (not
    /// corruption — corrupt entries are quarantined and recomputed
    /// silently) under [`crate::TransientPolicy::Fail`]. Retryable: the
    /// compile service retries these with seeded backoff. Never cached,
    /// like [`CompileError::Cancelled`] — disk weather is not a property
    /// of the stage inputs.
    CacheIo(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse: {e}"),
            CompileError::Sema(e) => write!(f, "analysis: {e}"),
            CompileError::Lower(e) => write!(f, "RT generation: {e}"),
            CompileError::Deps(e) => write!(f, "dependence analysis: {e}"),
            CompileError::Schedule(e) => write!(f, "scheduling: {e}"),
            CompileError::RegAlloc(e) => write!(f, "register allocation: {e}"),
            CompileError::Encode(e) => write!(f, "encoding: {e}"),
            CompileError::ProgramTooLong { needed, available } => write!(
                f,
                "program needs {needed} instructions, controller stores {available}"
            ),
            CompileError::Cancelled => write!(f, "compilation cancelled by the caller"),
            CompileError::Panicked(msg) => {
                write!(f, "compiler panic (contained): {msg}")
            }
            CompileError::CacheIo(msg) => {
                write!(f, "artifact cache I/O: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Wall-clock time spent in each stage of one compile — the per-stage
/// profile that tells a designer (and the perf work) *where* a compile
/// spends its milliseconds, not just the end-to-end total. Surfaced by
/// `examples/profile_compile.rs` and exercised in CI.
///
/// Stages served from a [`CompileSession`]'s artifact cache report
/// [`Duration::ZERO`] and count into [`CompileStats::cache_hits`] instead,
/// so `total()` tracks the work *this* compile actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Source parsing.
    pub parse: Duration,
    /// Semantic analysis / signal-flow-graph building.
    pub sema: Duration,
    /// RT generation (`dspcc_rtgen::lower`).
    pub lower: Duration,
    /// RT modification (ISA classification + artificial resources).
    pub modify: Duration,
    /// Dependence-graph construction.
    pub deps: Duration,
    /// Conflict-matrix construction.
    pub matrix: Duration,
    /// Scheduling (including the length lower bound).
    pub schedule: Duration,
    /// Register allocation.
    pub regalloc: Duration,
    /// Word-format derivation + instruction encoding.
    pub encode: Duration,
    /// Pipeline stages served from the session's artifact cache
    /// (0 on a cold compile; up to 7 — frontend, lower, modify,
    /// deps+matrix, schedule, regalloc, encode — on a full repeat).
    /// Includes [`CompileStats::disk_hits`].
    pub cache_hits: u32,
    /// The subset of [`CompileStats::cache_hits`] served from the
    /// session's *persistent* disk cache (deserialized from a
    /// checksum-verified entry rather than found in the in-memory memo).
    pub disk_hits: u32,
    /// `Some` when the fuel budget truncated the scheduling search and
    /// the compile returned its best-so-far result (see
    /// [`dspcc_sched::Degradation`]); `None` on a full-budget compile.
    pub degradation: Option<dspcc_sched::Degradation>,
}

impl CompileStats {
    /// Sum over all stages (cached stages contribute zero).
    pub fn total(&self) -> Duration {
        self.parse
            + self.sema
            + self.lower
            + self.modify
            + self.deps
            + self.matrix
            + self.schedule
            + self.regalloc
            + self.encode
    }
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse {:?} | sema {:?} | lower {:?} | modify {:?} | deps {:?} | matrix {:?} | \
             schedule {:?} | regalloc {:?} | encode {:?} (total {:?}, cache hits {})",
            self.parse,
            self.sema,
            self.lower,
            self.modify,
            self.deps,
            self.matrix,
            self.schedule,
            self.regalloc,
            self.encode,
            self.total(),
            self.cache_hits
        )?;
        if let Some(d) = &self.degradation {
            write!(f, " [degraded: {d}]")?;
        }
        Ok(())
    }
}

/// The compiler: a configured pipeline for one core.
///
/// Non-consuming builder — set options, then call [`Compiler::compile`]
/// repeatedly (the design-iteration loop of figure 1). Every `compile`
/// runs through a fresh [`CompileSession`]; pass a shared session via
/// [`Compiler::compile_in`] to reuse stage artifacts across compiles.
#[derive(Debug, Clone)]
pub struct Compiler<'c> {
    core: &'c Core,
    /// Lazily-built shared copy of `core`, so repeated `compile` calls in
    /// the iteration loop clone the core once, not once per compile (the
    /// borrow on `core` guarantees it cannot change underneath).
    core_arc: std::sync::OnceLock<Arc<Core>>,
    options: CompileOptions,
}

impl<'c> Compiler<'c> {
    /// A compiler for `core` with default options: no explicit budget
    /// (the controller's program depth still caps the schedule), slack
    /// priority, constant CSE off (each offset is refetched, the
    /// behaviour of the paper's constant units), list scheduling.
    pub fn new(core: &'c Core) -> Self {
        Compiler {
            core,
            core_arc: std::sync::OnceLock::new(),
            options: CompileOptions::default(),
        }
    }

    fn core_arc(&self) -> &Arc<Core> {
        self.core_arc.get_or_init(|| Arc::new(self.core.clone()))
    }

    /// Sets the hard cycle budget (e.g. 64 for the audio core: 2.8 MHz /
    /// 44 kHz).
    pub fn budget(&mut self, cycles: u32) -> &mut Self {
        self.options.budget = Some(cycles);
        self
    }

    /// Sets the list-scheduling priority function.
    pub fn priority(&mut self, priority: Priority) -> &mut Self {
        self.options.priority = priority;
        self
    }

    /// Enables merging of identical constant fetches.
    pub fn cse_constants(&mut self, on: bool) -> &mut Self {
        self.options.cse_constants = on;
        self
    }

    /// Uses the exact branch-and-bound scheduler (with execution-interval
    /// pruning) instead of list scheduling. Requires a budget.
    pub fn exact(&mut self, on: bool) -> &mut Self {
        self.options.exact = on;
        self
    }

    /// Node limit for the exact scheduler's branch-and-bound search
    /// (default 2,000,000) — the knob that trades completeness for a
    /// bounded worst case on hostile inputs.
    pub fn exact_max_nodes(&mut self, n: u64) -> &mut Self {
        self.options.exact_max_nodes = n;
        self
    }

    /// Restart count for the randomised scheduling search.
    pub fn restarts(&mut self, n: u32) -> &mut Self {
        self.options.restarts = n;
        self
    }

    /// Worker threads for the scheduling restarts: `0` (the default) uses
    /// one per available core, `1` runs inline. The schedule is
    /// **bit-identical for every setting** — the parallel engine reduces
    /// attempts by a deterministic `(length, attempt index)` rule — so
    /// this knob trades latency only, never output.
    pub fn sched_threads(&mut self, n: usize) -> &mut Self {
        self.options.sched_threads = n;
        self
    }

    /// Disables justification compaction (single greedy pass only) — the
    /// weak-scheduler baseline of experiment E10.
    pub fn compaction(&mut self, on: bool) -> &mut Self {
        self.options.compaction = on;
        self
    }

    /// Deterministic compute budget for the scheduling search, in work
    /// units (one unit = one attempt, justification pass, or
    /// branch-and-bound node; never wall-clock, so budgeted output is
    /// bit-identical on every machine and thread count). On exhaustion
    /// the compile degrades gracefully — best-so-far schedule, with a
    /// [`dspcc_sched::Degradation`] report on
    /// [`CompileStats::degradation`].
    pub fn fuel(&mut self, units: u64) -> &mut Self {
        self.options.fuel = Some(units);
        self
    }

    /// The accumulated option set (what a [`CompileSession`] keys stage
    /// caches on).
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Runs the full pipeline on `source` through a fresh session.
    ///
    /// # Errors
    ///
    /// Returns the first stage failure as [`CompileError`] — the
    /// designer-facing feasibility feedback.
    pub fn compile(&self, source: &str) -> Result<Compiled, CompileError> {
        self.compile_in(&CompileSession::new(), source)
    }

    /// As [`Compiler::compile`], reusing `session`'s cached stage
    /// artifacts (and contributing this compile's artifacts to it).
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_in(
        &self,
        session: &CompileSession,
        source: &str,
    ) -> Result<Compiled, CompileError> {
        session.compile(self.core_arc(), source, &self.options)
    }

    /// As [`Compiler::compile`], from an already-built signal-flow graph.
    ///
    /// Runs through a fresh throwaway session like [`Compiler::compile`];
    /// when compiling the same graph repeatedly, use
    /// [`CompileSession::compile_dfg`] with a shared session so the stage
    /// work past the frontend amortizes across calls (the graph content
    /// fingerprint itself is recomputed per call — it is what the cache
    /// is keyed on).
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_dfg(&self, dfg: &Dfg) -> Result<Compiled, CompileError> {
        CompileSession::new().compile_dfg(self.core_arc(), &Arc::new(dfg.clone()), &self.options)
    }
}

/// Everything the pipeline produced, kept around for inspection,
/// reporting, and simulation.
///
/// The large members are `Arc`-shared with the session's stage artifacts:
/// compiling N variants of one application does **not** clone the core,
/// graph, lowering, or dependence graph N times — the variants share
/// them, and each `Compiled` is cheap to hold.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The core compiled for.
    pub core: Arc<Core>,
    /// The application's signal-flow graph.
    pub dfg: Arc<Dfg>,
    /// RT generation output (program already ISA-modified).
    pub lowering: Arc<Lowering>,
    /// Dependence graph used for scheduling.
    pub deps: Arc<DependenceGraph>,
    /// The schedule (one instruction per cycle).
    pub schedule: Arc<Schedule>,
    /// Provable lower bound on the schedule length
    /// (`dspcc_sched::bounds`), computed during compilation.
    pub schedule_bound: u32,
    /// Physical register assignment.
    pub assignment: Arc<RegAssignment>,
    /// Executable microcode.
    pub microcode: Arc<Microcode>,
    /// Names of the artificial resources installed (empty without an ISA).
    pub artificial_names: Vec<String>,
    /// The classification used, if any.
    pub classification: Option<Classification>,
    /// Per-stage wall-clock profile of this compile.
    pub stats: CompileStats,
}

impl Compiled {
    /// Cycle count of the time-loop.
    pub fn cycles(&self) -> u32 {
        self.schedule.length()
    }

    /// Loop edges in the scheduler's type, for folding experiments.
    pub fn loop_edges(&self) -> Vec<LoopEdge> {
        self.lowering
            .loop_edges
            .iter()
            .map(|&(from, to, distance)| LoopEdge { from, to, distance })
            .collect()
    }

    /// The provable lower bound on the time-loop's cycle count
    /// (`dspcc_sched::bounds`), captured at compile time:
    /// `cycles() == schedule_lower_bound()` proves the schedule optimal.
    pub fn schedule_lower_bound(&self) -> u32 {
        self.schedule_bound
    }

    /// The figure-9 occupation report for the audio-core resource rows,
    /// annotated with the schedule-length lower bound — the occupation
    /// percentages *suggest* quality, the bound *proves* it.
    pub fn occupation(&self, rows: &[(&str, &str)]) -> OccupationReport {
        OccupationReport::compute(&self.lowering.program, &self.schedule, rows)
            .with_lower_bound(self.schedule_lower_bound())
    }

    /// Folds the time-loop by modulo scheduling (the paper's future work):
    /// returns the folded schedule with the smallest initiation interval
    /// found, overlapping at most `max_stages` iterations.
    ///
    /// Folded schedules are a *scheduling-level* result (like the paper's
    /// own figures); the executable microcode remains the flat schedule.
    ///
    /// # Errors
    ///
    /// Returns [`dspcc_sched::folding::FoldError`] if no initiation
    /// interval up to the flat length admits a modulo schedule.
    pub fn fold(&self, max_stages: u32, restarts: u32) -> Result<FoldedSchedule, FoldError> {
        let edges = self.loop_edges();
        fold_schedule_with_restarts(
            &self.lowering.program,
            &self.deps,
            &edges,
            self.schedule.length().max(1),
            restarts,
            max_stages,
        )
    }

    /// The occupation report of a folded kernel: activity per phase
    /// (cycle mod II).
    pub fn folded_occupation(
        &self,
        folded: &FoldedSchedule,
        rows: &[(&str, &str)],
    ) -> OccupationReport {
        let mut kernel = dspcc_sched::Schedule::new();
        for id in self.lowering.program.rt_ids() {
            kernel.place(id, folded.phase(id));
        }
        OccupationReport::compute(&self.lowering.program, &kernel, rows)
    }

    /// A cycle-accurate simulator loaded with the generated microcode.
    ///
    /// # Errors
    ///
    /// Propagates [`dspcc_sim::SimError`] from construction.
    pub fn simulator(&self) -> Result<CoreSim, dspcc_sim::SimError> {
        CoreSim::new(&self.core.datapath, &self.microcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;
    use dspcc_dfg::Interpreter;

    #[test]
    fn tiny_core_end_to_end() {
        let core = cores::tiny_core();
        let compiled = Compiler::new(&core)
            .compile("input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);")
            .unwrap();
        assert!(compiled.cycles() > 0);
        let mut sim = compiled.simulator().unwrap();
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        for x in [0i64, 1000, -2000, 32767, -32768] {
            assert_eq!(sim.step_frame(&[x]).unwrap(), interp.step(&[x]));
        }
    }

    #[test]
    fn budget_violation_reports_schedule_error() {
        let core = cores::tiny_core();
        let err = Compiler::new(&core)
            .budget(2)
            .compile("input u; output y; y = pass(u);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Schedule(_)), "{err}");
    }

    #[test]
    fn parse_and_sema_errors_wrapped() {
        let core = cores::tiny_core();
        let err = Compiler::new(&core).compile("input u; y :=").unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
        let err = Compiler::new(&core)
            .compile("input u; output y; y = frob(u);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Sema(_)));
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn lower_error_wrapped() {
        // tiny_core has no RAM: taps are impossible.
        let core = cores::tiny_core();
        let err = Compiler::new(&core)
            .compile("input u; output y; y = pass(u@1);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn audio_core_applies_abc_resource() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .compile("input u; output y; y = pass(u);")
            .unwrap();
        assert_eq!(compiled.artificial_names, vec!["ABC".to_owned()]);
        // The input read and the output write both carry ABC.
        let carrying = compiled
            .lowering
            .program
            .rts()
            .filter(|(_, rt)| rt.usage_of("ABC").is_some())
            .count();
        assert_eq!(carrying, 2);
    }

    #[test]
    fn exact_scheduler_matches_list_feasibility() {
        let core = cores::tiny_core();
        let src = "input u; coeff k = 0.25; output y; y = add(mlt(k, u), u);";
        let list = Compiler::new(&core).compile(src).unwrap();
        let exact = Compiler::new(&core)
            .budget(list.cycles())
            .exact(true)
            .compile(src)
            .unwrap();
        assert!(exact.cycles() <= list.cycles());
        let mut sim = exact.simulator().unwrap();
        let mut interp = Interpreter::new(&exact.dfg, core.format);
        for x in [500i64, -500] {
            assert_eq!(sim.step_frame(&[x]).unwrap(), interp.step(&[x]));
        }
    }

    #[test]
    fn exact_max_nodes_is_settable_and_observed() {
        let core = cores::tiny_core();
        let src = "input u; coeff k = 0.25; output y; y = add(mlt(k, u), u);";
        let feasible = Compiler::new(&core).compile(src).unwrap();
        // The builder records the limit...
        let mut compiler = Compiler::new(&core);
        compiler
            .budget(feasible.cycles())
            .exact(true)
            .exact_max_nodes(1);
        assert_eq!(compiler.options().exact_max_nodes, 1);
        // ...and a one-node search cannot place the program: the exact
        // scheduler exhausts its budget and reports a schedule failure
        // where the default limit (see exact_scheduler_matches_list_
        // feasibility) succeeds.
        let err = compiler.compile(src).unwrap_err();
        assert!(matches!(err, CompileError::Schedule(_)), "{err}");
    }

    #[test]
    fn audio_core_runs_delay_lines() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .budget(64)
            .compile("input u; output y; y = pass(u@2);")
            .unwrap();
        assert!(compiled.cycles() <= 64);
        let mut sim = compiled.simulator().unwrap();
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        for x in 0..8i64 {
            assert_eq!(
                sim.step_frame(&[x * 111]).unwrap(),
                interp.step(&[x * 111]),
                "frame {x}"
            );
        }
    }

    #[test]
    fn occupation_report_accessible() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .compile("input u; coeff k = 0.5; output y; y = pass_clip(mlt(k, u@1));")
            .unwrap();
        let report = compiled.occupation(&[("MULT", "mult"), ("RAM", "ram")]);
        assert!(report.row("MULT").unwrap().busy_cycles() >= 1);
        assert!(report.row("RAM").unwrap().busy_cycles() >= 2);
    }

    #[test]
    fn warm_session_reuses_frontend_and_analysis() {
        let core = Arc::new(cores::audio_core());
        let src = "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);";
        let session = CompileSession::new();
        let cold = session
            .compile(&core, src, &CompileOptions::default())
            .unwrap();
        assert_eq!(cold.stats.cache_hits, 0);
        // Re-scheduling with only schedule-stage options changed skips
        // frontend, lower, modify, and deps+matrix: 4 hits.
        let warm_opts = CompileOptions {
            budget: Some(cold.cycles() + 4),
            restarts: 2,
            ..CompileOptions::default()
        };
        let warm = session.compile(&core, src, &warm_opts).unwrap();
        assert_eq!(warm.stats.cache_hits, 4);
        assert!(Arc::ptr_eq(&cold.lowering, &warm.lowering));
        assert!(Arc::ptr_eq(&cold.deps, &warm.deps));
        // An identical repeat hits every stage.
        let repeat = session
            .compile(&core, src, &CompileOptions::default())
            .unwrap();
        assert_eq!(repeat.stats.cache_hits, 7);
        assert!(Arc::ptr_eq(&cold.microcode, &repeat.microcode));
        assert_eq!(repeat.stats.total(), Duration::ZERO);
    }
}
