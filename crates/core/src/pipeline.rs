//! The compiler pipeline of figure 1b.
//!
//! ```text
//! application source
//!   → RT generation                      (dspcc-rtgen::lower)
//!   → RT modification                    (merging + ISA conflicts)
//!   → scheduling & instruction encoding  (dspcc-sched, dspcc-encode)
//! ```
//!
//! Failures at any stage — unroutable values, missed cycle budgets,
//! register-file overflows — are *feasibility feedback*: "if this does not
//! result in a feasible solution an iteration cycle is required in which
//! the source must be improved" (section 4). The error type is therefore
//! deliberately rich.

use std::fmt;
use std::time::{Duration, Instant};

use dspcc_arch::{Controller, Datapath};
use dspcc_dfg::{parse, Dfg};
use dspcc_encode::{allocate_registers, encode, FieldLayout, Microcode, RegAssignment};
use dspcc_isa::{artificial_resources, Classification, CoverStrategy, InstructionSet};
use dspcc_num::WordFormat;
use dspcc_rtgen::{apply_instruction_set, lower, LowerOptions, Lowering};
use dspcc_sched::bounds::length_lower_bound;
use dspcc_sched::compact::schedule_and_compact_in;
use dspcc_sched::deps::DependenceGraph;
use dspcc_sched::exact::{exact_schedule, ExactConfig};
use dspcc_sched::folding::LoopEdge;
use dspcc_sched::folding::{fold_schedule_with_restarts, FoldError, FoldedSchedule};
use dspcc_sched::list::{list_schedule_with_matrix, ListConfig, Priority};
use dspcc_sched::report::OccupationReport;
use dspcc_sched::{ConflictMatrix, Schedule};
use dspcc_sim::CoreSim;

/// An in-house core: datapath + controller + instruction set (+ word
/// format) — "the core is defined by the presented datapath, the
/// controller and the instruction set" (section 7).
#[derive(Debug, Clone)]
pub struct Core {
    /// Human-readable name.
    pub name: String,
    /// The datapath (figure 3 instantiation).
    pub datapath: Datapath,
    /// The controller (figure 4 instantiation).
    pub controller: Controller,
    /// Datapath word format.
    pub format: WordFormat,
    /// RT classification; `None` derives one automatically when an
    /// instruction set is given.
    pub classification: Option<Classification>,
    /// The instruction set; `None` means "fully horizontal" (datapath
    /// conflicts only).
    pub instruction_set: Option<InstructionSet>,
    /// Clique-cover strategy for the artificial resources.
    pub cover: CoverStrategy,
}

/// Compilation failure, wrapping each stage's error with the stage name.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Source does not parse.
    Parse(dspcc_dfg::ParseError),
    /// Source does not analyse.
    Sema(dspcc_dfg::SemaError),
    /// RT generation failed (unroutable / missing units / RAM overflow).
    Lower(dspcc_rtgen::LowerError),
    /// Dependence analysis failed.
    Deps(String),
    /// No schedule within the budget.
    Schedule(dspcc_sched::SchedError),
    /// Register allocation failed.
    RegAlloc(dspcc_encode::RegAllocError),
    /// Instruction encoding failed.
    Encode(dspcc_encode::EncodeError),
    /// The schedule exceeds the controller's program memory.
    ProgramTooLong {
        /// Instructions needed.
        needed: u32,
        /// Program memory depth.
        available: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse: {e}"),
            CompileError::Sema(e) => write!(f, "analysis: {e}"),
            CompileError::Lower(e) => write!(f, "RT generation: {e}"),
            CompileError::Deps(e) => write!(f, "dependence analysis: {e}"),
            CompileError::Schedule(e) => write!(f, "scheduling: {e}"),
            CompileError::RegAlloc(e) => write!(f, "register allocation: {e}"),
            CompileError::Encode(e) => write!(f, "encoding: {e}"),
            CompileError::ProgramTooLong { needed, available } => write!(
                f,
                "program needs {needed} instructions, controller stores {available}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Wall-clock time spent in each stage of one [`Compiler::compile`] run —
/// the per-stage profile that tells a designer (and the perf work) *where*
/// a compile spends its milliseconds, not just the end-to-end total.
/// Surfaced by `examples/profile_compile.rs` and exercised in CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// RT generation (`dspcc_rtgen::lower`).
    pub lower: Duration,
    /// RT modification (ISA classification + artificial resources).
    pub modify: Duration,
    /// Dependence-graph construction.
    pub deps: Duration,
    /// Conflict-matrix construction.
    pub matrix: Duration,
    /// Scheduling (including the length lower bound).
    pub schedule: Duration,
    /// Register allocation.
    pub regalloc: Duration,
    /// Word-format derivation + instruction encoding.
    pub encode: Duration,
}

impl CompileStats {
    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.lower
            + self.modify
            + self.deps
            + self.matrix
            + self.schedule
            + self.regalloc
            + self.encode
    }
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lower {:?} | modify {:?} | deps {:?} | matrix {:?} | schedule {:?} | \
             regalloc {:?} | encode {:?} (total {:?})",
            self.lower,
            self.modify,
            self.deps,
            self.matrix,
            self.schedule,
            self.regalloc,
            self.encode,
            self.total()
        )
    }
}

/// The compiler: a configured pipeline for one core.
///
/// Non-consuming builder — set options, then call [`Compiler::compile`]
/// repeatedly (the design-iteration loop of figure 1).
#[derive(Debug, Clone)]
pub struct Compiler<'c> {
    core: &'c Core,
    budget: Option<u32>,
    priority: Priority,
    cse_constants: bool,
    exact: bool,
    exact_max_nodes: u64,
    restarts: u32,
    compaction: bool,
    sched_threads: usize,
}

impl<'c> Compiler<'c> {
    /// A compiler for `core` with default options: no explicit budget
    /// (the controller's program depth still caps the schedule), slack
    /// priority, constant CSE off (each offset is refetched, the
    /// behaviour of the paper's constant units), list scheduling.
    pub fn new(core: &'c Core) -> Self {
        Compiler {
            core,
            budget: None,
            priority: Priority::Slack,
            cse_constants: false,
            exact: false,
            exact_max_nodes: 2_000_000,
            restarts: 6,
            compaction: true,
            sched_threads: 0,
        }
    }

    /// Sets the hard cycle budget (e.g. 64 for the audio core: 2.8 MHz /
    /// 44 kHz).
    pub fn budget(&mut self, cycles: u32) -> &mut Self {
        self.budget = Some(cycles);
        self
    }

    /// Sets the list-scheduling priority function.
    pub fn priority(&mut self, priority: Priority) -> &mut Self {
        self.priority = priority;
        self
    }

    /// Enables merging of identical constant fetches.
    pub fn cse_constants(&mut self, on: bool) -> &mut Self {
        self.cse_constants = on;
        self
    }

    /// Uses the exact branch-and-bound scheduler (with execution-interval
    /// pruning) instead of list scheduling. Requires a budget.
    pub fn exact(&mut self, on: bool) -> &mut Self {
        self.exact = on;
        self
    }

    /// Restart count for the randomised scheduling search.
    pub fn restarts(&mut self, n: u32) -> &mut Self {
        self.restarts = n;
        self
    }

    /// Worker threads for the scheduling restarts: `0` (the default) uses
    /// one per available core, `1` runs inline. The schedule is
    /// **bit-identical for every setting** — the parallel engine reduces
    /// attempts by a deterministic `(length, attempt index)` rule — so
    /// this knob trades latency only, never output.
    pub fn sched_threads(&mut self, n: usize) -> &mut Self {
        self.sched_threads = n;
        self
    }

    /// Disables justification compaction (single greedy pass only) — the
    /// weak-scheduler baseline of experiment E10.
    pub fn compaction(&mut self, on: bool) -> &mut Self {
        self.compaction = on;
        self
    }

    /// Runs the full pipeline on `source`.
    ///
    /// # Errors
    ///
    /// Returns the first stage failure as [`CompileError`] — the
    /// designer-facing feasibility feedback.
    pub fn compile(&self, source: &str) -> Result<Compiled, CompileError> {
        let program = parse(source).map_err(CompileError::Parse)?;
        let dfg = Dfg::build(&program).map_err(CompileError::Sema)?;
        self.compile_dfg(&dfg)
    }

    /// As [`Compiler::compile`], from an already-built signal-flow graph.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_dfg(&self, dfg: &Dfg) -> Result<Compiled, CompileError> {
        let core = self.core;
        let mut stats = CompileStats::default();
        // Step 1: RT generation.
        let opts = LowerOptions {
            cse_constants: self.cse_constants,
        };
        let t = Instant::now();
        let mut lowering = lower(dfg, &core.datapath, &opts).map_err(CompileError::Lower)?;
        stats.lower = t.elapsed();
        // Step 2: RT modification — impose the instruction set.
        let t = Instant::now();
        let mut artificial_names = Vec::new();
        let classification = match (&core.classification, &core.instruction_set) {
            (Some(c), Some(iset)) => {
                let ars = artificial_resources(iset, c, core.cover);
                artificial_names = apply_instruction_set(&mut lowering.program, c, &ars);
                Some(c.clone())
            }
            (None, Some(iset)) => {
                let c = Classification::identify(&core.datapath);
                let ars = artificial_resources(iset, &c, core.cover);
                artificial_names = apply_instruction_set(&mut lowering.program, &c, &ars);
                Some(c)
            }
            _ => core.classification.clone(),
        };
        stats.modify = t.elapsed();
        // Step 3: scheduling. The conflict matrix and the provable length
        // lower bound are computed once and shared: the matrix feeds the
        // scheduler, the bound its stopping rules and the quality report.
        let t = Instant::now();
        let deps = DependenceGraph::build_with_edges(&lowering.program, &lowering.sequence_edges)
            .map_err(|e| CompileError::Deps(e.to_string()))?;
        stats.deps = t.elapsed();
        let t = Instant::now();
        let matrix = ConflictMatrix::build(&lowering.program);
        stats.matrix = t.elapsed();
        let t = Instant::now();
        let hard_cap = core.controller.program_depth();
        let budget = self.budget.map(|b| b.min(hard_cap)).unwrap_or(hard_cap);
        let (schedule, schedule_bound) = if self.exact {
            let mut config = ExactConfig::new(budget);
            config.max_nodes = self.exact_max_nodes;
            let result = exact_schedule(&lowering.program, &deps, &config);
            let schedule = match result.schedule {
                Some(s) => s,
                None => {
                    return Err(CompileError::Schedule(
                        dspcc_sched::SchedError::BudgetExceeded {
                            budget,
                            unplaced: lowering.program.rt_count(),
                        },
                    ))
                }
            };
            let bound = length_lower_bound(&lowering.program, &deps, &matrix);
            (schedule, bound)
        } else if self.compaction {
            schedule_and_compact_in(
                &lowering.program,
                &deps,
                &matrix,
                Some(budget),
                self.restarts,
                self.sched_threads,
            )
            .map_err(CompileError::Schedule)?
        } else {
            let config = ListConfig {
                budget: Some(budget),
                priority: self.priority,
                jitter_seed: 0,
            };
            let schedule = list_schedule_with_matrix(&lowering.program, &deps, &matrix, &config)
                .map_err(CompileError::Schedule)?;
            let bound = length_lower_bound(&lowering.program, &deps, &matrix);
            (schedule, bound)
        };
        stats.schedule = t.elapsed();
        if schedule.length() > hard_cap {
            return Err(CompileError::ProgramTooLong {
                needed: schedule.length(),
                available: hard_cap,
            });
        }
        // Register allocation + encoding.
        let t = Instant::now();
        let pinned = vec![lowering.fp_reg.clone()];
        let assignment = allocate_registers(&lowering.program, &schedule, &core.datapath, &pinned)
            .map_err(CompileError::RegAlloc)?;
        stats.regalloc = t.elapsed();
        let t = Instant::now();
        let layout = FieldLayout::derive(&core.datapath, core.format);
        let words = encode(
            &assignment.program,
            &schedule,
            &layout,
            &lowering.immediates,
            core.format,
        )
        .map_err(CompileError::Encode)?;
        // The IO orders are the microcode's contract with the simulator;
        // move them out of the lowering instead of cloning (the lowering
        // keeps the program and layout data the reports read).
        let microcode = Microcode {
            words,
            layout,
            rom_image: lowering
                .rom_image
                .iter()
                .map(|&v| core.format.from_f64(v))
                .collect(),
            region_size: lowering.ram_layout.region_size,
            output_order: std::mem::take(&mut lowering.output_order),
            input_order: std::mem::take(&mut lowering.input_order),
            word_format: core.format,
        };
        stats.encode = t.elapsed();
        Ok(Compiled {
            core: core.clone(),
            dfg: dfg.clone(),
            lowering,
            deps,
            schedule,
            schedule_bound,
            assignment,
            microcode,
            artificial_names,
            classification,
            stats,
        })
    }
}

/// Everything the pipeline produced, kept around for inspection,
/// reporting, and simulation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The core compiled for.
    pub core: Core,
    /// The application's signal-flow graph.
    pub dfg: Dfg,
    /// RT generation output (program already ISA-modified).
    pub lowering: Lowering,
    /// Dependence graph used for scheduling.
    pub deps: DependenceGraph,
    /// The schedule (one instruction per cycle).
    pub schedule: Schedule,
    /// Provable lower bound on the schedule length
    /// (`dspcc_sched::bounds`), computed during compilation.
    pub schedule_bound: u32,
    /// Physical register assignment.
    pub assignment: RegAssignment,
    /// Executable microcode.
    pub microcode: Microcode,
    /// Names of the artificial resources installed (empty without an ISA).
    pub artificial_names: Vec<String>,
    /// The classification used, if any.
    pub classification: Option<Classification>,
    /// Per-stage wall-clock profile of this compile.
    pub stats: CompileStats,
}

impl Compiled {
    /// Cycle count of the time-loop.
    pub fn cycles(&self) -> u32 {
        self.schedule.length()
    }

    /// Loop edges in the scheduler's type, for folding experiments.
    pub fn loop_edges(&self) -> Vec<LoopEdge> {
        self.lowering
            .loop_edges
            .iter()
            .map(|&(from, to, distance)| LoopEdge { from, to, distance })
            .collect()
    }

    /// The provable lower bound on the time-loop's cycle count
    /// (`dspcc_sched::bounds`), captured at compile time:
    /// `cycles() == schedule_lower_bound()` proves the schedule optimal.
    pub fn schedule_lower_bound(&self) -> u32 {
        self.schedule_bound
    }

    /// The figure-9 occupation report for the audio-core resource rows,
    /// annotated with the schedule-length lower bound — the occupation
    /// percentages *suggest* quality, the bound *proves* it.
    pub fn occupation(&self, rows: &[(&str, &str)]) -> OccupationReport {
        OccupationReport::compute(&self.lowering.program, &self.schedule, rows)
            .with_lower_bound(self.schedule_lower_bound())
    }

    /// Folds the time-loop by modulo scheduling (the paper's future work):
    /// returns the folded schedule with the smallest initiation interval
    /// found, overlapping at most `max_stages` iterations.
    ///
    /// Folded schedules are a *scheduling-level* result (like the paper's
    /// own figures); the executable microcode remains the flat schedule.
    ///
    /// # Errors
    ///
    /// Returns [`dspcc_sched::folding::FoldError`] if no initiation
    /// interval up to the flat length admits a modulo schedule.
    pub fn fold(&self, max_stages: u32, restarts: u32) -> Result<FoldedSchedule, FoldError> {
        let edges = self.loop_edges();
        fold_schedule_with_restarts(
            &self.lowering.program,
            &self.deps,
            &edges,
            self.schedule.length().max(1),
            restarts,
            max_stages,
        )
    }

    /// The occupation report of a folded kernel: activity per phase
    /// (cycle mod II).
    pub fn folded_occupation(
        &self,
        folded: &FoldedSchedule,
        rows: &[(&str, &str)],
    ) -> OccupationReport {
        let mut kernel = dspcc_sched::Schedule::new();
        for id in self.lowering.program.rt_ids() {
            kernel.place(id, folded.phase(id));
        }
        OccupationReport::compute(&self.lowering.program, &kernel, rows)
    }

    /// A cycle-accurate simulator loaded with the generated microcode.
    ///
    /// # Errors
    ///
    /// Propagates [`dspcc_sim::SimError`] from construction.
    pub fn simulator(&self) -> Result<CoreSim, dspcc_sim::SimError> {
        CoreSim::new(&self.core.datapath, &self.microcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;
    use dspcc_dfg::Interpreter;

    #[test]
    fn tiny_core_end_to_end() {
        let core = cores::tiny_core();
        let compiled = Compiler::new(&core)
            .compile("input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);")
            .unwrap();
        assert!(compiled.cycles() > 0);
        let mut sim = compiled.simulator().unwrap();
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        for x in [0i64, 1000, -2000, 32767, -32768] {
            assert_eq!(sim.step_frame(&[x]).unwrap(), interp.step(&[x]));
        }
    }

    #[test]
    fn budget_violation_reports_schedule_error() {
        let core = cores::tiny_core();
        let err = Compiler::new(&core)
            .budget(2)
            .compile("input u; output y; y = pass(u);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Schedule(_)), "{err}");
    }

    #[test]
    fn parse_and_sema_errors_wrapped() {
        let core = cores::tiny_core();
        let err = Compiler::new(&core).compile("input u; y :=").unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
        let err = Compiler::new(&core)
            .compile("input u; output y; y = frob(u);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Sema(_)));
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn lower_error_wrapped() {
        // tiny_core has no RAM: taps are impossible.
        let core = cores::tiny_core();
        let err = Compiler::new(&core)
            .compile("input u; output y; y = pass(u@1);")
            .unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn audio_core_applies_abc_resource() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .compile("input u; output y; y = pass(u);")
            .unwrap();
        assert_eq!(compiled.artificial_names, vec!["ABC".to_owned()]);
        // The input read and the output write both carry ABC.
        let carrying = compiled
            .lowering
            .program
            .rts()
            .filter(|(_, rt)| rt.usage_of("ABC").is_some())
            .count();
        assert_eq!(carrying, 2);
    }

    #[test]
    fn exact_scheduler_matches_list_feasibility() {
        let core = cores::tiny_core();
        let src = "input u; coeff k = 0.25; output y; y = add(mlt(k, u), u);";
        let list = Compiler::new(&core).compile(src).unwrap();
        let exact = Compiler::new(&core)
            .budget(list.cycles())
            .exact(true)
            .compile(src)
            .unwrap();
        assert!(exact.cycles() <= list.cycles());
        let mut sim = exact.simulator().unwrap();
        let mut interp = Interpreter::new(&exact.dfg, core.format);
        for x in [500i64, -500] {
            assert_eq!(sim.step_frame(&[x]).unwrap(), interp.step(&[x]));
        }
    }

    #[test]
    fn audio_core_runs_delay_lines() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .budget(64)
            .compile("input u; output y; y = pass(u@2);")
            .unwrap();
        assert!(compiled.cycles() <= 64);
        let mut sim = compiled.simulator().unwrap();
        let mut interp = Interpreter::new(&compiled.dfg, core.format);
        for x in 0..8i64 {
            assert_eq!(
                sim.step_frame(&[x * 111]).unwrap(),
                interp.step(&[x * 111]),
                "frame {x}"
            );
        }
    }

    #[test]
    fn occupation_report_accessible() {
        let core = cores::audio_core();
        let compiled = Compiler::new(&core)
            .compile("input u; coeff k = 0.5; output y; y = pass_clip(mlt(k, u@1));")
            .unwrap();
        let report = compiled.occupation(&[("MULT", "mult"), ("RAM", "ram")]);
        assert!(report.row("MULT").unwrap().busy_cycles() >= 1);
        assert!(report.row("RAM").unwrap().busy_cycles() >= 2);
    }
}
