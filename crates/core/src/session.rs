//! Artifact-cached compilation sessions — the paper's iteration cycle as
//! a first-class object.
//!
//! Figure 1 of the paper is not a one-shot compiler but a loop: the
//! designer re-compiles the same application while varying budgets,
//! priorities, cover strategies and cores until the feasibility feedback
//! is clean. A [`CompileSession`] makes that loop cheap: every pipeline
//! stage ([`crate::stages`]) is memoized under a content fingerprint of
//! exactly the inputs it reads, so a re-compile with only schedule-stage
//! options changed (budget / priority / restarts) reuses the lowering,
//! the ISA modification, the dependence graph and the conflict matrix —
//! roughly the front 40% of a cold compile — and a repeat of an identical
//! variant is nearly free. [`crate::CompileStats::cache_hits`] reports how
//! many stages were served from cache on each compile.
//!
//! Sessions are `Sync`: the memo sits behind a mutex that is **never held
//! while a stage computes**, so the design-space exploration driver
//! ([`crate::explore`]) can drive one shared session from many worker
//! threads. Two threads racing on the same cold key may both compute the
//! artifact; stages are deterministic, so both results are bit-identical
//! and the first one wins the cache slot.
//!
//! The memo is **unbounded**: every distinct stage key retains its
//! artifact for the session's lifetime (that retention is what makes a
//! sweep's variants share work). A session is meant to be scoped to one
//! design loop; for very long-lived loops over ever-changing options,
//! call [`CompileSession::clear`] between phases or start a fresh
//! session.
//!
//! ```
//! use std::sync::Arc;
//! use dspcc::{cores, CompileOptions, CompileSession};
//!
//! let session = CompileSession::new();
//! let core = Arc::new(cores::tiny_core());
//! let src = "input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);";
//! let cold = session.compile(&core, src, &CompileOptions::default())?;
//! assert_eq!(cold.stats.cache_hits, 0);
//! // Re-schedule under a budget: the frontend and analysis stages hit.
//! let opts = CompileOptions { budget: Some(16), ..CompileOptions::default() };
//! let warm = session.compile(&core, src, &opts)?;
//! assert!(warm.stats.cache_hits >= 4);
//! # Ok::<(), dspcc::CompileError>(())
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dspcc_dfg::Dfg;
use dspcc_sched::list::Priority;

use crate::cache::{self, DiskCache, Load, TransientPolicy};
use crate::pipeline::{CompileError, CompileStats, Compiled, Core};
use crate::stages::{
    self, AnalysisArtifact, EncodeArtifact, FrontendArtifact, LowerArtifact, ModifyArtifact,
    RegallocArtifact, ScheduleArtifact,
};

/// Every pipeline option, detached from the [`crate::Compiler`] builder so
/// sessions and the exploration driver can construct variants directly.
///
/// Defaults match [`crate::Compiler::new`]: no explicit budget (the
/// controller's program depth still caps the schedule), slack priority,
/// constant CSE off, compacting restart scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Hard cycle budget; `None` caps at the controller's program depth.
    pub budget: Option<u32>,
    /// List-scheduling priority function.
    pub priority: Priority,
    /// Merge identical constant fetches.
    pub cse_constants: bool,
    /// Use the exact branch-and-bound scheduler.
    pub exact: bool,
    /// Node limit for the exact scheduler.
    pub exact_max_nodes: u64,
    /// Restart count for the randomised scheduling search.
    pub restarts: u32,
    /// Justification compaction on/off.
    pub compaction: bool,
    /// Scheduler worker threads (`0` = one per core; output-invariant).
    pub sched_threads: usize,
    /// Deterministic compute budget for the scheduling search, in work
    /// units (one unit = one attempt, justification pass, or
    /// branch-and-bound node — never wall-clock). `None` = unlimited.
    /// Exhaustion degrades gracefully: the compile returns its
    /// best-so-far schedule plus a [`dspcc_sched::Degradation`] report on
    /// the stats.
    pub fuel: Option<u64>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            budget: None,
            priority: Priority::Slack,
            cse_constants: false,
            exact: false,
            exact_max_nodes: 2_000_000,
            restarts: 6,
            compaction: true,
            sched_threads: 0,
            fuel: None,
        }
    }
}

/// One memo table: stage key → the artifact (or the stage's deterministic
/// failure, cached so a sweep doesn't re-derive the same feasibility
/// verdict for every variant sharing the failing prefix).
type Memo<A> = HashMap<u64, Result<Arc<A>, CompileError>>;

#[derive(Default)]
struct SessionMemo {
    frontend: Memo<FrontendArtifact>,
    lower: Memo<LowerArtifact>,
    modify: Memo<ModifyArtifact>,
    analysis: Memo<AnalysisArtifact>,
    schedule: Memo<ScheduleArtifact>,
    regalloc: Memo<RegallocArtifact>,
    encode: Memo<EncodeArtifact>,
}

impl SessionMemo {
    fn len(&self) -> usize {
        self.frontend.len()
            + self.lower.len()
            + self.modify.len()
            + self.analysis.len()
            + self.schedule.len()
            + self.regalloc.len()
            + self.encode.len()
    }
}

/// A staged compilation session: memoizes stage artifacts by content
/// fingerprint across [`CompileSession::compile`] calls. See the
/// [module docs](self).
#[derive(Default)]
pub struct CompileSession {
    memo: Mutex<SessionMemo>,
    disk: Option<Arc<DiskCache>>,
}

impl CompileSession {
    /// An empty session.
    pub fn new() -> Self {
        CompileSession::default()
    }

    /// An empty session backed by a persistent [`DiskCache`]: the
    /// schedule and encode artifacts — the expensive tail of the
    /// pipeline — are additionally serialized to `cache` under their
    /// stage fingerprints, so a *fresh* session (new process, post-crash
    /// restart) warm-starts from disk. Entries are checksummed and
    /// version-tagged; anything that fails validation is quarantined and
    /// recomputed, so a corrupt cache costs time, never correctness.
    pub fn with_disk_cache(cache: Arc<DiskCache>) -> Self {
        CompileSession {
            memo: Mutex::default(),
            disk: Some(cache),
        }
    }

    /// The persistent cache this session is backed by, if any.
    pub fn disk_cache(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Number of cached stage artifacts (all stages summed).
    pub fn cached_artifacts(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Drops every cached artifact.
    pub fn clear(&self) {
        *self.memo.lock().unwrap() = SessionMemo::default();
    }

    /// Looks up `key` in the stage table selected by `table`, computing
    /// and caching on miss. The lock is released while `compute` runs.
    fn memoize<A>(
        &self,
        table: impl Fn(&mut SessionMemo) -> &mut Memo<A>,
        key: u64,
        hits: &mut u32,
        compute: impl FnOnce() -> Result<A, CompileError>,
    ) -> Result<Arc<A>, CompileError> {
        if let Some(cached) = table(&mut self.memo.lock().unwrap()).get(&key) {
            *hits += 1;
            return cached.clone();
        }
        let result = compute().map(Arc::new);
        // Cancellation is a property of *this caller's* token, not of the
        // stage inputs: caching it would poison the key for every later
        // compile. Deterministic failures stay cached.
        if !matches!(result, Err(CompileError::Cancelled)) {
            table(&mut self.memo.lock().unwrap())
                .entry(key)
                .or_insert_with(|| result.clone());
        }
        result
    }

    /// As [`CompileSession::memoize`], with a disk tier between the memo
    /// and the compute: a memo miss consults the persistent cache (when
    /// configured), and a computed artifact is serialized back to it.
    ///
    /// Recovery ladder on the disk path: a validation failure was already
    /// quarantined by [`DiskCache::load`]; a checksum-*passing* payload
    /// that fails `decode` (format drift within one entry version) is
    /// quarantined here; both fall through to recompute. A *transient*
    /// backend error recomputes under [`TransientPolicy::Recompute`] or
    /// surfaces as [`CompileError::CacheIo`] (never memo-cached) under
    /// [`TransientPolicy::Fail`] so the compile service can retry with
    /// backoff instead of stampeding recomputes onto a sick disk.
    #[allow(clippy::too_many_arguments)]
    fn memoize_persistent<A>(
        &self,
        table: impl Fn(&mut SessionMemo) -> &mut Memo<A>,
        stage: &'static str,
        key: u64,
        hits: &mut u32,
        disk_hits: &mut u32,
        decode: impl Fn(&[u8]) -> Result<A, String>,
        encode: impl Fn(&A) -> Vec<u8>,
        compute: impl FnOnce() -> Result<A, CompileError>,
    ) -> Result<Arc<A>, CompileError> {
        if let Some(cached) = table(&mut self.memo.lock().unwrap()).get(&key) {
            *hits += 1;
            return cached.clone();
        }
        if let Some(disk) = &self.disk {
            match disk.load(stage, key) {
                Load::Hit(payload) => match decode(&payload) {
                    Ok(artifact) => {
                        let artifact = Arc::new(artifact);
                        *hits += 1;
                        *disk_hits += 1;
                        table(&mut self.memo.lock().unwrap())
                            .entry(key)
                            .or_insert_with(|| Ok(Arc::clone(&artifact)));
                        return Ok(artifact);
                    }
                    Err(reason) => disk.quarantine(stage, key, &payload, &reason),
                },
                Load::Miss | Load::Corrupt => {}
                Load::Transient(e) => {
                    if disk.policy() == TransientPolicy::Fail {
                        return Err(CompileError::CacheIo(e));
                    }
                }
            }
        }
        let result = compute().map(Arc::new);
        if let (Some(disk), Ok(artifact)) = (&self.disk, &result) {
            disk.store(stage, key, &encode(artifact));
        }
        if !matches!(result, Err(CompileError::Cancelled)) {
            table(&mut self.memo.lock().unwrap())
                .entry(key)
                .or_insert_with(|| result.clone());
        }
        result
    }

    /// Runs the full pipeline on `source` for `core`, reusing every cached
    /// stage whose fingerprint matches.
    ///
    /// # Errors
    ///
    /// Returns the first stage failure as [`CompileError`], exactly like
    /// [`crate::Compiler::compile`] (cached failures included).
    pub fn compile(
        &self,
        core: &Arc<Core>,
        source: &str,
        options: &CompileOptions,
    ) -> Result<Compiled, CompileError> {
        self.compile_inner(core, source, options, None)
    }

    /// As [`CompileSession::compile`], under a cooperative cancellation
    /// token. The token is polled at every stage boundary and inside the
    /// scheduling search (round barriers, branch-and-bound nodes); a
    /// raised token aborts with [`CompileError::Cancelled`], whose result
    /// is **never cached** — the session stays healthy for later
    /// compiles of the same variant.
    ///
    /// The token travels out-of-band rather than inside [`CompileOptions`]
    /// because options are hashed into stage keys and a cancellation flag
    /// is not an input of any stage's output.
    ///
    /// # Errors
    ///
    /// See [`CompileSession::compile`], plus [`CompileError::Cancelled`].
    pub fn compile_cancellable(
        &self,
        core: &Arc<Core>,
        source: &str,
        options: &CompileOptions,
        cancel: &dspcc_sched::CancelToken,
    ) -> Result<Compiled, CompileError> {
        self.compile_inner(core, source, options, Some(cancel))
    }

    fn compile_inner(
        &self,
        core: &Arc<Core>,
        source: &str,
        options: &CompileOptions,
        cancel: Option<&dspcc_sched::CancelToken>,
    ) -> Result<Compiled, CompileError> {
        let mut hits = 0u32;
        let frontend = self.memoize(
            |m| &mut m.frontend,
            stages::source_fingerprint(source),
            &mut hits,
            || stages::run_frontend(source),
        )?;
        let frontend_hit = hits > 0;
        self.compile_stages(core, &frontend, options, hits, frontend_hit, cancel)
    }

    /// As [`CompileSession::compile`], from an already-built signal-flow
    /// graph (keyed by graph content — no source text involved).
    ///
    /// # Errors
    ///
    /// See [`CompileSession::compile`].
    pub fn compile_dfg(
        &self,
        core: &Arc<Core>,
        dfg: &Arc<Dfg>,
        options: &CompileOptions,
    ) -> Result<Compiled, CompileError> {
        let frontend = Arc::new(stages::frontend_from_dfg(Arc::clone(dfg)));
        self.compile_stages(core, &frontend, options, 0, false, None)
    }

    fn compile_stages(
        &self,
        core: &Arc<Core>,
        frontend: &Arc<FrontendArtifact>,
        options: &CompileOptions,
        mut hits: u32,
        frontend_hit: bool,
        cancel: Option<&dspcc_sched::CancelToken>,
    ) -> Result<Compiled, CompileError> {
        // Stage-boundary cancellation check: one closure, called before
        // each stage dispatch below.
        let check_cancel = || match cancel {
            Some(c) if c.is_cancelled() => Err(CompileError::Cancelled),
            _ => Ok(()),
        };
        // Stage timings in the stats reflect *this* compile: a stage
        // served from cache cost nothing here, so it reports zero and
        // bumps `cache_hits` instead. `charged` zeroes an artifact's
        // recorded time when the memo lookup that produced it hit.
        use std::time::Duration;
        let charged = |hits_before: u32, hits_after: u32, time: Duration| {
            if hits_after > hits_before {
                Duration::ZERO
            } else {
                time
            }
        };
        let lkey = stages::lower_key(frontend.dfg_fp, core, options);
        let h = hits;
        check_cancel()?;
        let lowered = self.memoize(
            |m| &mut m.lower,
            lkey,
            &mut hits,
            || stages::run_lower(&frontend.dfg, core, options),
        )?;
        let lower_time = charged(h, hits, lowered.time);
        let mkey = stages::modify_key(lkey, core);
        let h = hits;
        check_cancel()?;
        let modified = self.memoize(
            |m| &mut m.modify,
            mkey,
            &mut hits,
            || Ok(stages::run_modify(&lowered, core)),
        )?;
        let modify_time = charged(h, hits, modified.time);
        let akey = stages::analysis_key(mkey);
        let h = hits;
        check_cancel()?;
        let analysis = self.memoize(
            |m| &mut m.analysis,
            akey,
            &mut hits,
            || stages::run_analysis(&modified),
        )?;
        let deps_time = charged(h, hits, analysis.deps_time);
        let matrix_time = charged(h, hits, analysis.matrix_time);
        let mut disk_hits = 0u32;
        let skey = stages::schedule_key(akey, core, options);
        let h = hits;
        check_cancel()?;
        let scheduled = self.memoize_persistent(
            |m| &mut m.schedule,
            "schedule",
            skey,
            &mut hits,
            &mut disk_hits,
            cache::decode_schedule_artifact,
            cache::encode_schedule_artifact,
            || stages::run_schedule(&modified, &analysis, core, options, cancel),
        )?;
        let schedule_time = charged(h, hits, scheduled.time);
        let rkey = stages::regalloc_key(skey);
        let h = hits;
        check_cancel()?;
        let allocated = self.memoize(
            |m| &mut m.regalloc,
            rkey,
            &mut hits,
            || stages::run_regalloc(&modified, &scheduled, core),
        )?;
        let regalloc_time = charged(h, hits, allocated.time);
        let ekey = stages::encode_key(skey, core);
        let h = hits;
        check_cancel()?;
        let encoded = self.memoize_persistent(
            |m| &mut m.encode,
            "encode",
            ekey,
            &mut hits,
            &mut disk_hits,
            |bytes| cache::decode_encode_artifact(bytes, core),
            cache::encode_encode_artifact,
            || stages::run_encode(&modified, &scheduled, &allocated, core),
        )?;
        let encode_time = charged(h, hits, encoded.time);
        let stats = CompileStats {
            parse: charged(0, frontend_hit as u32, frontend.parse_time),
            sema: charged(0, frontend_hit as u32, frontend.sema_time),
            lower: lower_time,
            modify: modify_time,
            deps: deps_time,
            matrix: matrix_time,
            schedule: schedule_time,
            regalloc: regalloc_time,
            encode: encode_time,
            cache_hits: hits,
            disk_hits,
            degradation: scheduled.degradation,
        };
        Ok(Compiled {
            core: Arc::clone(core),
            dfg: Arc::clone(&frontend.dfg),
            lowering: Arc::clone(&modified.lowering),
            deps: Arc::clone(&analysis.deps),
            schedule: Arc::clone(&scheduled.schedule),
            schedule_bound: scheduled.bound,
            assignment: Arc::clone(&allocated.assignment),
            microcode: Arc::clone(&encoded.microcode),
            artificial_names: modified.artificial_names.clone(),
            classification: modified.classification.clone(),
            stats,
        })
    }
}

impl std::fmt::Debug for CompileSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileSession")
            .field("cached_artifacts", &self.cached_artifacts())
            .finish()
    }
}
