//! `dspcc` — retargetable code generation for in-house DSP cores.
//!
//! A from-scratch reproduction of *"Efficient Code Generation for In-House
//! DSP-Cores"* (M. Strik, J. van Meerbergen, A. Timmer, J. Jess, S. Note —
//! DATE 1995). Philips' in-house cores are small application-domain VLIW
//! DSPs (digital audio, DECT, GSM); the paper shows how to retarget ASIC
//! high-level-synthesis technology into a code generator for such a core
//! by (1) generating *register transfers* from the source, (2) *modifying*
//! them — merging resources and installing the instruction set as
//! artificial resource conflicts computed from a clique cover of an RT
//! class conflict graph — and (3) scheduling the result into VLIW
//! instructions under a hard cycle budget.
//!
//! This crate is the driver tying the substrates together:
//!
//! * [`Core`] — an in-house core definition: datapath + controller +
//!   instruction set (paper section 5 + 6);
//! * [`Compiler`] — the figure-1b pipeline: RT generation → RT
//!   modification → scheduling → register allocation → instruction
//!   encoding, with the feasibility feedback the paper's methodology
//!   revolves around;
//! * [`CompileSession`] / [`stages`] — the pipeline as individually
//!   invokable stages whose `Arc`-shared artifacts are memoized by
//!   content fingerprint, so the paper's design-iteration cycle (figure
//!   1) reuses everything a changed option does not invalidate;
//! * [`explore`] — parallel design-space exploration: a [`DesignSpace`]
//!   grid of cores × budgets × covers × priorities × CSE swept through
//!   one shared session into a deterministic feasibility table;
//! * [`codesign`] — the HW/SW co-design Pareto search: seeded cores,
//!   cross-core unions, and intra-core merge moves scored on (corpus
//!   cycles, hardware cost), every frontier point verified bit-exact
//!   against the golden model;
//! * [`cores`] — ready-made cores: the figure-8 digital-audio core (with
//!   the section-7 instruction set), a teaching-sized core, an
//!   intermediate-architecture variant for merging experiments, and
//!   seeded random-but-valid cores ([`cores::generated_core`]);
//! * [`conform`] — the cross-core differential conformance fleet: a seed
//!   block × the application corpus, each cell compiled and pinned
//!   bit-exact against the `dspcc_dfg::Interpreter` golden model — any
//!   `Mismatch` cell is a compiler bug by construction;
//! * [`apps`] — ready-made applications: the figure-7 stereo audio
//!   application and parametric filter generators.
//!
//! # Quickstart
//!
//! ```
//! use dspcc::{cores, Compiler};
//!
//! let core = cores::tiny_core();
//! let compiled = Compiler::new(&core)
//!     .budget(16)
//!     .compile("input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);")?;
//! assert!(compiled.schedule.length() <= 16);
//! // Execute the generated microcode cycle-accurately:
//! let mut sim = compiled.simulator()?;
//! let out = sim.step_frame(&[1000])?;
//! assert_eq!(out, vec![1500]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod apps;
pub mod cache;
pub mod codesign;
pub mod conform;
pub mod cores;
pub mod explore;
pub mod fault;
pub mod fault_io;
mod pipeline;
pub mod service;
mod session;
pub mod stages;

pub use cache::{
    CacheBackend, CacheStats, ChaosBackend, DiskCache, IoFaultKind, StdFs, TransientPolicy,
};
pub use codesign::{Codesign, CodesignReport, DesignPoint, HwCost, PointMetrics, PointOutcome};
pub use conform::{CellOutcome, ConformCell, ConformFleet, ConformReport};
pub use explore::{DesignSpace, Exploration, VariantMetrics, VariantRow};
pub use fault::{FaultAudit, FaultCell, FaultOutcome, FaultReport, MutationKind};
pub use fault_io::{IoFaultAudit, IoFaultCell, IoFaultOutcome, IoFaultReport};
pub use pipeline::{CompileError, CompileStats, Compiled, Compiler, Core};
pub use service::{CompileService, Rejected, ServiceConfig, ServiceOutcome, ServiceStats, Ticket};
pub use session::{CompileOptions, CompileSession};

// Re-export the substrate crates under one roof, the way a user consumes
// the workspace.
pub use dspcc_arch as arch;
pub use dspcc_dfg as dfg;
pub use dspcc_encode as encode;
pub use dspcc_graph as graph;
pub use dspcc_ir as ir;
pub use dspcc_isa as isa;
pub use dspcc_num as num;
pub use dspcc_rtgen as rtgen;
pub use dspcc_sched as sched;
pub use dspcc_sim as sim;
