//! Parallel design-space exploration — the paper's section-4 iteration
//! loop as a single API call.
//!
//! The paper's methodology is iterative: "if this does not result in a
//! feasible solution an iteration cycle is required in which the source
//! must be improved". In practice the designer does not vary one knob at
//! a time but sweeps a *grid* — cores × budgets × cover strategies ×
//! priorities × CSE — and reads a feasibility table. [`DesignSpace`]
//! declares such a grid; [`DesignSpace::run`] compiles every variant on
//! scoped worker threads through **one shared [`CompileSession`]**, so the
//! expensive stage artifacts (lowering, classification, dependence graph,
//! conflict matrix) are computed once per distinct (core, cse) prefix and
//! reused by every schedule-level variant.
//!
//! The resulting [`Exploration`] is **deterministic**: rows appear in
//! grid-nesting order (cores, then budgets, then covers, then priorities,
//! then cse) regardless of worker count or completion order, and each
//! row's content is deterministic because the pipeline itself is — the
//! one exception is [`VariantMetrics::cache_hits`], which reflects cache
//! *timing* and is therefore excluded from the rendered table.
//!
//! ```no_run
//! use dspcc::{apps, cores, explore::DesignSpace};
//! use dspcc::sched::list::Priority;
//!
//! let table = DesignSpace::new(apps::sum_of_products(4))
//!     .core(cores::audio_core())
//!     .core(cores::tiny_core())
//!     .budgets([None, Some(16), Some(32)])
//!     .priorities([Priority::Slack, Priority::SinkAlap])
//!     .run();
//! println!("{table}");
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dspcc_isa::CoverStrategy;
use dspcc_sched::list::Priority;
use dspcc_sched::report::OccupationReport;

use crate::pipeline::{CompileError, Core};
use crate::session::{CompileOptions, CompileSession};

/// A grid of pipeline variants over one application source.
///
/// Dimensions left empty default to a single neutral entry (no budget,
/// default priority, each core's own cover strategy, CSE off), so a
/// `DesignSpace` with only cores sweeps exactly those cores once.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    source: String,
    cores: Vec<Arc<Core>>,
    budgets: Vec<Option<u32>>,
    covers: Vec<Option<CoverStrategy>>,
    priorities: Vec<Priority>,
    cse: Vec<bool>,
    restarts: u32,
    compaction: Option<bool>,
    threads: usize,
}

impl DesignSpace {
    /// A design space over `source` with no cores and neutral dimensions.
    pub fn new(source: impl Into<String>) -> Self {
        DesignSpace {
            source: source.into(),
            cores: Vec::new(),
            budgets: vec![None],
            covers: vec![None],
            priorities: vec![Priority::default()],
            cse: vec![false],
            restarts: 1,
            compaction: None,
            threads: 0,
        }
    }

    /// Adds a core to sweep.
    pub fn core(mut self, core: Core) -> Self {
        self.cores.push(Arc::new(core));
        self
    }

    /// Adds an already-shared core to sweep (no clone).
    pub fn core_arc(mut self, core: Arc<Core>) -> Self {
        self.cores.push(core);
        self
    }

    /// Sets the cycle budgets to sweep (`None` = controller cap only).
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = Option<u32>>) -> Self {
        self.budgets = budgets.into_iter().collect();
        assert!(
            !self.budgets.is_empty(),
            "budget dimension must be non-empty"
        );
        self
    }

    /// Sets the cover strategies to sweep (each replaces the core's own).
    pub fn covers(mut self, covers: impl IntoIterator<Item = CoverStrategy>) -> Self {
        self.covers = covers.into_iter().map(Some).collect();
        assert!(!self.covers.is_empty(), "cover dimension must be non-empty");
        self
    }

    /// Sets the scheduling priorities to sweep.
    ///
    /// The priority function is read **only by the plain list scheduler**:
    /// unless [`DesignSpace::compaction`] was set explicitly, declaring
    /// more than one priority makes [`DesignSpace::run`] use
    /// `compaction = false` — otherwise every priority "variant" would be
    /// the same compilation (the compacting restart engine never reads
    /// it, and the session would serve full cache hits).
    pub fn priorities(mut self, priorities: impl IntoIterator<Item = Priority>) -> Self {
        self.priorities = priorities.into_iter().collect();
        assert!(
            !self.priorities.is_empty(),
            "priority dimension must be non-empty"
        );
        self
    }

    /// Sets the constant-CSE settings to sweep.
    pub fn cse(mut self, cse: impl IntoIterator<Item = bool>) -> Self {
        self.cse = cse.into_iter().collect();
        assert!(!self.cse.is_empty(), "cse dimension must be non-empty");
        self
    }

    /// Restart count for every variant's scheduling search (default 1 —
    /// exploration favours breadth over per-variant polish).
    pub fn restarts(mut self, n: u32) -> Self {
        self.restarts = n;
        self
    }

    /// Justification compaction on/off for every variant, overriding the
    /// default ([`DesignSpace::run`] derives it: on, unless a
    /// multi-priority sweep needs the list scheduler that actually reads
    /// the priority — see [`DesignSpace::priorities`]). Setting `true`
    /// together with a multi-priority sweep makes the priority dimension
    /// inert (identical rows).
    pub fn compaction(mut self, on: bool) -> Self {
        self.compaction = Some(on);
        self
    }

    /// The effective compaction setting (explicit override, or derived
    /// from the priority dimension — order-independent).
    fn effective_compaction(&self) -> bool {
        self.compaction.unwrap_or(self.priorities.len() <= 1)
    }

    /// Worker threads: `0` (default) uses one per available core, `1`
    /// runs serially. Output is identical for every setting.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The variant list in deterministic grid-nesting order.
    fn variants(&self) -> Vec<VariantSpec> {
        let mut variants = Vec::new();
        for (core_idx, _) in self.cores.iter().enumerate() {
            for &budget in &self.budgets {
                for (cover_idx, &cover) in self.covers.iter().enumerate() {
                    for &priority in &self.priorities {
                        for &cse in &self.cse {
                            variants.push(VariantSpec {
                                core_idx,
                                budget,
                                cover_idx,
                                cover,
                                priority,
                                cse,
                            });
                        }
                    }
                }
            }
        }
        variants
    }

    /// Compiles every variant (in parallel, through one shared session)
    /// and returns the feasibility table.
    ///
    /// # Panics
    ///
    /// Panics if no core was added.
    pub fn run(&self) -> Exploration {
        assert!(
            !self.cores.is_empty(),
            "design space needs at least one core"
        );
        let variants = self.variants();
        // One shared Arc<Core> per (core, cover) combination, built once —
        // not per variant — so N schedule-level variants share a single
        // core value (and through it, the session's cached artifacts).
        let cores_by_cover: Vec<Vec<Arc<Core>>> = self
            .cores
            .iter()
            .map(|core| {
                self.covers
                    .iter()
                    .map(|cover| match cover {
                        None => Arc::clone(core),
                        Some(c) if *c == core.cover => Arc::clone(core),
                        Some(c) => Arc::new(Core {
                            cover: *c,
                            ..(**core).clone()
                        }),
                    })
                    .collect()
            })
            .collect();
        let session = CompileSession::new();
        let slots: Vec<Mutex<Option<VariantRow>>> =
            variants.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(variants.len())
        .max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(variant) = variants.get(i) else {
                        break;
                    };
                    let core = &cores_by_cover[variant.core_idx][variant.cover_idx];
                    let row = self.run_variant(&session, core, variant);
                    *slots[i].lock().unwrap() = Some(row);
                });
            }
        });
        Exploration {
            rows: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every variant ran"))
                .collect(),
            cached_artifacts: session.cached_artifacts(),
        }
    }

    fn run_variant(
        &self,
        session: &CompileSession,
        core: &Arc<Core>,
        variant: &VariantSpec,
    ) -> VariantRow {
        let options = CompileOptions {
            budget: variant.budget,
            priority: variant.priority,
            cse_constants: variant.cse,
            restarts: self.restarts,
            compaction: self.effective_compaction(),
            // Exploration parallelism lives at the variant level; keep
            // each variant's scheduler single-threaded so workers don't
            // oversubscribe the machine.
            sched_threads: 1,
            ..CompileOptions::default()
        };
        // Contain panics at the grid-point boundary: one poisoned design
        // point reports `CompileError::Panicked` and the sweep finishes
        // the rest of the table.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.compile(core, &self.source, &options)
        }))
        .unwrap_or_else(|payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_owned()
            };
            Err(CompileError::Panicked(msg))
        })
        .map(|compiled| {
            // Mean OPU occupation: the figure-9 quality signal,
            // reduced to one number per variant.
            let rows: Vec<(&str, &str)> = core
                .datapath
                .opus()
                .iter()
                .map(|opu| (opu.name(), opu.name()))
                .collect();
            let report =
                OccupationReport::compute(&compiled.lowering.program, &compiled.schedule, &rows);
            let occupancy = if report.rows().is_empty() {
                0.0
            } else {
                report
                    .rows()
                    .iter()
                    .map(|r| f64::from(r.percent()))
                    .sum::<f64>()
                    / report.rows().len() as f64
            };
            VariantMetrics {
                cycles: compiled.cycles(),
                bound: compiled.schedule_lower_bound(),
                occupancy,
                cache_hits: compiled.stats.cache_hits,
            }
        });
        VariantRow {
            core: core.name.clone(),
            budget: variant.budget,
            cover: variant.cover,
            priority: variant.priority,
            cse: variant.cse,
            outcome,
        }
    }
}

/// One point of the grid (indices resolved at run time).
#[derive(Debug, Clone, Copy)]
struct VariantSpec {
    core_idx: usize,
    budget: Option<u32>,
    cover_idx: usize,
    cover: Option<CoverStrategy>,
    priority: Priority,
    cse: bool,
}

/// Quality metrics of one feasible variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantMetrics {
    /// Cycle count of the time-loop.
    pub cycles: u32,
    /// Provable lower bound on the cycle count.
    pub bound: u32,
    /// Mean OPU occupation percentage (0–100).
    pub occupancy: f64,
    /// Pipeline stages this variant got from the shared session cache.
    ///
    /// **Timing-dependent under a parallel sweep**: two workers racing on
    /// the same cold prefix may both compute it, so this count (unlike
    /// every other field) can vary run to run. It is excluded from
    /// [`VariantMetrics::same_result`] and from the [`Exploration`]
    /// table for that reason.
    pub cache_hits: u32,
}

impl VariantMetrics {
    /// Whether two metrics describe the same compilation result (all
    /// fields except the timing-dependent `cache_hits`).
    pub fn same_result(&self, other: &VariantMetrics) -> bool {
        self.cycles == other.cycles
            && self.bound == other.bound
            && self.occupancy == other.occupancy
    }
}

/// One row of the exploration table: the variant's coordinates plus its
/// feasibility feedback.
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// Core name.
    pub core: String,
    /// Cycle budget (`None` = controller cap).
    pub budget: Option<u32>,
    /// Cover-strategy override (`None` = the core's own).
    pub cover: Option<CoverStrategy>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Constant CSE.
    pub cse: bool,
    /// Metrics when feasible, the stage failure when not — exactly the
    /// paper's feasibility feedback, one row per design point.
    pub outcome: Result<VariantMetrics, CompileError>,
}

impl VariantRow {
    /// Whether the variant compiled.
    pub fn is_feasible(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// The result table of a [`DesignSpace::run`], in deterministic grid
/// order.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// One row per variant, in grid-nesting order.
    pub rows: Vec<VariantRow>,
    /// Stage artifacts held by the shared session after the sweep — a
    /// direct measure of how much work the variants shared (7 × variants
    /// would mean no sharing at all).
    pub cached_artifacts: usize,
}

impl Exploration {
    /// Feasible rows only.
    pub fn feasible(&self) -> impl Iterator<Item = &VariantRow> {
        self.rows.iter().filter(|r| r.is_feasible())
    }

    /// The best feasible row: fewest cycles, ties broken by grid order
    /// (`min_by_key` keeps the first of equal minima — deterministic).
    pub fn best(&self) -> Option<&VariantRow> {
        self.rows
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok().map(|m| (m.cycles, r)))
            .min_by_key(|&(cycles, _)| cycles)
            .map(|(_, r)| r)
    }
}

impl fmt::Display for Exploration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>6}  {:<8} {:<13} {:<4} {:>6} {:>6} {:>5}  status",
            "core", "budget", "cover", "priority", "cse", "cycles", "bound", "occ%"
        )?;
        for row in &self.rows {
            let budget = row
                .budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_owned());
            let cover = row
                .cover
                .map(|c| c.to_string())
                .unwrap_or_else(|| "core".to_owned());
            match &row.outcome {
                Ok(m) => writeln!(
                    f,
                    "{:<10} {:>6}  {:<8} {:<13} {:<4} {:>6} {:>6} {:>5.1}  ok{}",
                    row.core,
                    budget,
                    cover,
                    row.priority.to_string(),
                    if row.cse { "on" } else { "off" },
                    m.cycles,
                    m.bound,
                    m.occupancy,
                    if m.cycles == m.bound {
                        " (optimal)"
                    } else {
                        ""
                    },
                )?,
                Err(e) => writeln!(
                    f,
                    "{:<10} {:>6}  {:<8} {:<13} {:<4} {:>6} {:>6} {:>5}  infeasible: {e}",
                    row.core,
                    budget,
                    cover,
                    row.priority.to_string(),
                    if row.cse { "on" } else { "off" },
                    "-",
                    "-",
                    "-",
                )?,
            }
        }
        write!(
            f,
            "{} variants, {} feasible; {} shared stage artifacts in session",
            self.rows.len(),
            self.feasible().count(),
            self.cached_artifacts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cores;

    fn space() -> DesignSpace {
        DesignSpace::new("input u; coeff k = 0.5; output y; y = add_clip(mlt(k, u), u);")
            .core(cores::audio_core())
            .core(cores::tiny_core())
            .budgets([None, Some(3)])
            .priorities([Priority::Slack, Priority::SinkAlap])
    }

    #[test]
    fn exploration_is_deterministic_across_thread_counts() {
        let serial = space().threads(1).run();
        let parallel = space().threads(4).run();
        assert_eq!(serial.rows.len(), 8);
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.core, b.core);
            assert_eq!(a.budget, b.budget);
            match (&a.outcome, &b.outcome) {
                // cache_hits is timing-dependent under a parallel sweep;
                // everything else must match bit for bit.
                (Ok(ma), Ok(mb)) => assert!(ma.same_result(mb), "{ma:?} != {mb:?}"),
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                _ => panic!("feasibility diverged between thread counts"),
            }
        }
        // The budget-3 variants are infeasible, and say so per row.
        assert!(serial.rows.iter().any(|r| !r.is_feasible()));
        // The best feasible row exists and is optimal-or-better than all.
        let best = serial.best().unwrap();
        let best_cycles = match &best.outcome {
            Ok(m) => m.cycles,
            Err(_) => unreachable!(),
        };
        for row in serial.feasible() {
            if let Ok(m) = &row.outcome {
                assert!(best_cycles <= m.cycles);
            }
        }
    }

    #[test]
    fn variants_share_session_artifacts() {
        let table = space().threads(2).run();
        // 8 variants × 7 stages = 56 artifact computations without
        // sharing; the shared session holds far fewer.
        assert!(
            table.cached_artifacts < 40,
            "expected artifact sharing, session holds {}",
            table.cached_artifacts
        );
        // At least one variant beyond the first per core reused stages.
        assert!(table
            .rows
            .iter()
            .any(|r| matches!(&r.outcome, Ok(m) if m.cache_hits > 0)));
        // Display renders a full table without panicking.
        let rendered = table.to_string();
        assert!(rendered.contains("feasible"));
    }
}
