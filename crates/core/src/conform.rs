//! Cross-core differential conformance — the fleet-scale oracle.
//!
//! Every differential test in this repository so far ran against three
//! hand-written datapaths. The conformance fleet opens the architecture
//! axis: for a block of generator seeds × the standard application corpus
//! it compiles each app on each generated core
//! ([`crate::cores::generated_core`]) and pins the simulated microcode
//! ([`dspcc_sim::CoreSim`]) **bit-exact** against the golden model
//! ([`dspcc_dfg::Interpreter`]) over a deterministic stimulus stream.
//!
//! Each `(seed, app)` cell classifies as:
//!
//! * [`CellOutcome::Pass`] — compiled, and every simulated frame matched
//!   the interpreter bit for bit;
//! * [`CellOutcome::Infeasible`] — the pipeline rejected the combination
//!   with a stated reason (no route, RAM overflow, register pressure,
//!   budget, program memory…): the paper's designer feedback, perfectly
//!   legitimate for a random core;
//! * [`CellOutcome::Mismatch`] — the pipeline *accepted* the combination
//!   but the microcode diverged from the golden model (or failed to
//!   execute). **Any mismatch is a compiler bug by construction** — this
//!   is the strongest end-to-end property the repo can state, and every
//!   future scheduler/encoder/regalloc change is now checked against
//!   hundreds of architectures instead of three.
//!
//! The fleet also runs **merged-core** cells
//! ([`ConformFleet::merged_pairs`]): each `(a, b)` pair compiles the
//! corpus on the structural union of two generated cores
//! ([`crate::cores::merged_core`]) — exactly the cross-core move the
//! co-design search ([`crate::codesign`]) explores — so datapath merging
//! is differentially verified at fleet scale, not just point-tested.
//!
//! Determinism: cores, stimulus, and compilation are all pure functions
//! of the seed block, and the fleet table is assembled into pre-indexed
//! slots — [`ConformFleet::run`] returns the same [`ConformReport`] for
//! every worker-thread count (pinned by `tests/conform_fleet.rs`).
//! Failures therefore reproduce from the `(seed, app)` pair (plus the
//! merge partner, for merged cells) alone.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dspcc_arch::SplitMix64;
use dspcc_dfg::Interpreter;

use crate::cores::{generated_core, merged_core};
use crate::pipeline::{CompileError, Core};
use crate::session::{CompileOptions, CompileSession};

/// The verdict of one `(seed, app)` conformance cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Compiled and matched the golden model on every frame.
    Pass {
        /// Time-loop cycle count of the compiled schedule.
        cycles: u32,
        /// Frames verified bit-exact.
        frames: u32,
        /// `Some` when the cell's fuel cap truncated the scheduling
        /// search and the compile served its best-so-far schedule (see
        /// [`dspcc_sched::Degradation`]). The cell still verified
        /// bit-exact — this flags that its cycle count may be weaker
        /// than a full-budget compile would produce.
        degradation: Option<dspcc_sched::Degradation>,
    },
    /// The pipeline rejected the combination (stage + reason) — designer
    /// feedback, not a bug.
    Infeasible(String),
    /// The pipeline accepted the combination but execution diverged from
    /// the golden model — a compiler bug by construction.
    Mismatch(String),
    /// The cell's deterministic fuel cap ran out before a schedule met
    /// the budget. The cell is quarantined (the sweep continues) and the
    /// message carries a repro command.
    Exhausted(String),
    /// The compiler panicked inside this cell. The panic was contained
    /// by the fleet worker — the sweep continues — and the message
    /// carries the payload plus a repro command.
    Panicked {
        /// The panic payload (or a placeholder for non-string payloads)
        /// plus the repro command.
        message: String,
    },
}

impl CellOutcome {
    /// Whether this cell passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, CellOutcome::Pass { .. })
    }

    /// Whether this cell passed *degraded*: verified bit-exact, but the
    /// schedule came from a fuel-truncated search rather than the full
    /// exhaustive/heuristic run.
    pub fn is_degraded_pass(&self) -> bool {
        matches!(
            self,
            CellOutcome::Pass {
                degradation: Some(_),
                ..
            }
        )
    }

    /// Whether this cell is a mismatch (a bug).
    pub fn is_mismatch(&self) -> bool {
        matches!(self, CellOutcome::Mismatch(_))
    }

    /// Whether this cell was quarantined (panic or fuel exhaustion)
    /// rather than verified one way or the other.
    pub fn is_quarantined(&self) -> bool {
        matches!(
            self,
            CellOutcome::Panicked { .. } | CellOutcome::Exhausted(_)
        )
    }
}

/// One row of the conformance table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformCell {
    /// The generator seed of the core.
    pub seed: u64,
    /// `Some(b)` when this cell ran on the structural union of the
    /// generated cores for `seed` and `b` ([`crate::cores::merged_core`])
    /// rather than on `generated_core(seed)` alone.
    pub merged_with: Option<u64>,
    /// The application's corpus name.
    pub app: String,
    /// The verdict.
    pub outcome: CellOutcome,
}

impl ConformCell {
    /// The cell's core label for tables and failure lines: the seed in
    /// hex, or `a+b` for a merged cell.
    pub fn core_label(&self) -> String {
        match self.merged_with {
            Some(b) => format!("{:x}+{:x}", self.seed, b),
            None => format!("{:x}", self.seed),
        }
    }
}

/// The standard application corpus: name → source, in fixed order. The
/// sizes are chosen so every workload shape (taps, feedback, pure
/// parallelism, ALU-only, the full figure-7 application) is represented
/// while a fleet cell stays fast enough for CI.
pub fn standard_corpus() -> Vec<(String, String)> {
    vec![
        ("fir8".to_owned(), crate::apps::fir(8)),
        ("biquad3".to_owned(), crate::apps::biquad_cascade(3)),
        ("sop6".to_owned(), crate::apps::sum_of_products(6)),
        ("addtree8".to_owned(), crate::apps::add_tree(8)),
        ("audio".to_owned(), crate::apps::audio_application()),
    ]
}

/// A conformance fleet: a seed block × an application corpus, compiled
/// and differentially verified in parallel through one shared
/// [`CompileSession`].
///
/// # Example
///
/// ```no_run
/// use dspcc::conform::ConformFleet;
///
/// let report = ConformFleet::new().seed_range(0..16).standard_corpus().run();
/// assert!(report.mismatches().next().is_none(), "{report}");
/// ```
#[derive(Debug, Clone)]
pub struct ConformFleet {
    seeds: Vec<u64>,
    merged: Vec<(u64, u64)>,
    apps: Vec<(String, String)>,
    frames: u32,
    threads: usize,
    options: CompileOptions,
}

impl Default for ConformFleet {
    fn default() -> Self {
        ConformFleet {
            seeds: Vec::new(),
            merged: Vec::new(),
            apps: Vec::new(),
            frames: 8,
            threads: 0,
            // Breadth over per-cell polish: few restarts, and the fleet's
            // parallelism lives at the cell level. The fuel cap bounds
            // every cell deterministically — a pathological (seed, app)
            // combination degrades or quarantines instead of hanging the
            // sweep (the cap is far above what any corpus cell spends).
            options: CompileOptions {
                restarts: 2,
                sched_threads: 1,
                fuel: Some(10_000),
                ..CompileOptions::default()
            },
        }
    }
}

impl ConformFleet {
    /// An empty fleet (no seeds, no apps).
    pub fn new() -> Self {
        ConformFleet::default()
    }

    /// Adds a contiguous seed block.
    pub fn seed_range(mut self, range: std::ops::Range<u64>) -> Self {
        self.seeds.extend(range);
        self
    }

    /// Adds explicit seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Adds merged-core cells: each `(a, b)` pair runs every app on the
    /// structural union of the two generated cores
    /// ([`crate::cores::merged_core`]), with its instruction set
    /// re-derived on the union. A pair whose union cannot be built
    /// becomes per-app [`CellOutcome::Infeasible`] cells with the merge
    /// machinery's stated reason — never a silent skip.
    pub fn merged_pairs(mut self, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        self.merged.extend(pairs);
        self
    }

    /// Adds one application.
    pub fn app(mut self, name: impl Into<String>, source: impl Into<String>) -> Self {
        self.apps.push((name.into(), source.into()));
        self
    }

    /// Adds the whole [`standard_corpus`].
    pub fn standard_corpus(mut self) -> Self {
        self.apps.extend(standard_corpus());
        self
    }

    /// Frames verified per passing cell (default 8).
    pub fn frames(mut self, frames: u32) -> Self {
        self.frames = frames;
        self
    }

    /// Worker threads: `0` (default) one per available core, `1` serial.
    /// The report is identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell compile options.
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the fleet: every `(seed, app)` cell, in deterministic
    /// (seed-major) order — single-seed rows first, merged-pair rows
    /// after, each row in builder order.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has no seeds (nor merged pairs) or no apps.
    pub fn run(&self) -> ConformReport {
        self.run_with(conform_cell)
    }

    /// Runs the fleet with a custom per-cell runner — the fault-injection
    /// audit ([`crate::fault`]) reuses the fleet's parallelism, slot
    /// determinism, and quarantine through this hook.
    ///
    /// Every runner invocation is wrapped in `catch_unwind`: a panicking
    /// cell is quarantined as [`CellOutcome::Panicked`] (payload plus a
    /// repro command) and the sweep continues — one poisoned cell can
    /// never take down the table.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has no seeds or no apps.
    pub fn run_with<F>(&self, runner: F) -> ConformReport
    where
        F: Fn(&CompileSession, &Arc<Core>, u64, &str, &str, u32, &CompileOptions) -> CellOutcome
            + Sync,
    {
        assert!(
            !self.seeds.is_empty() || !self.merged.is_empty(),
            "fleet needs at least one seed or merged pair"
        );
        assert!(!self.apps.is_empty(), "fleet needs at least one app");
        let workers = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        // The table's row axis: single-seed cores first, merged-pair
        // cores after, in builder order.
        let units: Vec<(u64, Option<u64>)> = self
            .seeds
            .iter()
            .map(|&s| (s, None))
            .chain(self.merged.iter().map(|&(a, b)| (a, Some(b))))
            .collect();
        // Phase 1: generate the cores, one slot per unit (parallel — the
        // ISA closure is the expensive part of generation). A merged pair
        // whose union fails carries the reason to its cells instead of a
        // core.
        type CoreSlot = Mutex<Option<Result<Arc<Core>, String>>>;
        let core_slots: Vec<CoreSlot> = units.iter().map(|_| Mutex::new(None)).collect();
        let next_core = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(units.len()) {
                scope.spawn(|| loop {
                    let i = next_core.fetch_add(1, Ordering::Relaxed);
                    let Some(&(seed, merged_with)) = units.get(i) else {
                        break;
                    };
                    let core = match merged_with {
                        None => Ok(Arc::new(generated_core(seed))),
                        Some(b) => merged_core(seed, b)
                            .map(Arc::new)
                            .map_err(|e| e.to_string()),
                    };
                    *core_slots[i].lock().unwrap() = Some(core);
                });
            }
        });
        let cores: Vec<Result<Arc<Core>, String>> = core_slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("core generated"))
            .collect();
        // Phase 2: the cells, through one shared session (stage artifacts
        // keyed by content — apps shared across variants of one core).
        let cells: Vec<(usize, usize)> = (0..units.len())
            .flat_map(|u| (0..self.apps.len()).map(move |a| (u, a)))
            .collect();
        let session = CompileSession::new();
        let slots: Vec<Mutex<Option<ConformCell>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(cells.len()).max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(u, a)) = cells.get(i) else { break };
                    let (seed, merged_with) = units[u];
                    let (app, source) = &self.apps[a];
                    let outcome = match &cores[u] {
                        Err(reason) => {
                            CellOutcome::Infeasible(format!("merged core unbuildable: {reason}"))
                        }
                        Ok(core) => {
                            let ran =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    runner(
                                        &session,
                                        core,
                                        seed,
                                        app,
                                        source,
                                        self.frames,
                                        &self.options,
                                    )
                                }))
                                .unwrap_or_else(|payload| {
                                    CellOutcome::Panicked {
                                        message: format!(
                                            "{}; repro: {}",
                                            panic_message(payload.as_ref()),
                                            repro_command(seed, app, self.frames)
                                        ),
                                    }
                                });
                            match merged_with {
                                None => ran,
                                // A quarantined merged cell's inner repro
                                // command names only `seed` — correct it
                                // to the merged-core spelling.
                                Some(b) => fix_merged_repro(ran, seed, b, app, self.frames),
                            }
                        }
                    };
                    *slots[i].lock().unwrap() = Some(ConformCell {
                        seed,
                        merged_with,
                        app: app.clone(),
                        outcome,
                    });
                });
            }
        });
        ConformReport {
            apps: self.apps.iter().map(|(n, _)| n.clone()).collect(),
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
                .collect(),
        }
    }
}

/// Runs one conformance cell: compile `source` for `core`, then verify
/// `frames` frames of seeded stimulus bit-exact against the interpreter.
///
/// Public so targeted reproduction (`examples/conform.rs` prints the
/// `(seed, app)` pair of a failing cell) needs no fleet setup.
pub fn conform_cell(
    session: &CompileSession,
    core: &Arc<Core>,
    seed: u64,
    app: &str,
    source: &str,
    frames: u32,
    options: &CompileOptions,
) -> CellOutcome {
    let compiled = match session.compile(core, source, options) {
        Ok(c) => c,
        Err(CompileError::Schedule(dspcc_sched::SchedError::FuelExhausted { spent, budget })) => {
            return CellOutcome::Exhausted(format!(
                "fuel exhausted after {spent} unit(s) with no schedule within {budget} \
                 cycles; repro: {}",
                repro_command(seed, app, frames)
            ))
        }
        Err(e) => return classify_error(e),
    };
    let mut sim = match compiled.simulator() {
        Ok(s) => s,
        Err(e) => return CellOutcome::Mismatch(format!("simulator construction failed: {e}")),
    };
    let mut interp = Interpreter::new(&compiled.dfg, core.format);
    let ports = compiled.dfg.input_ports().len();
    let mut rng = stimulus_rng(seed, app);
    let lo = core.format.min_value();
    let span = (core.format.max_value() - lo + 1) as u64;
    for frame in 0..frames {
        let inputs: Vec<i64> = (0..ports)
            .map(|_| lo + (rng.next_u64() % span) as i64)
            .collect();
        let expected = match interp.try_step(&inputs) {
            Ok(v) => v,
            Err(e) => {
                return CellOutcome::Mismatch(format!(
                    "frame {frame}: golden model rejected the stimulus: {e}"
                ))
            }
        };
        match sim.step_frame(&inputs) {
            Ok(got) if got == expected => {}
            Ok(got) => {
                return CellOutcome::Mismatch(format!(
                    "frame {frame}: microcode {got:?} != golden {expected:?} \
                     (inputs {inputs:?})"
                ))
            }
            Err(e) => {
                return CellOutcome::Mismatch(format!(
                    "frame {frame}: microcode execution failed: {e}"
                ))
            }
        }
    }
    CellOutcome::Pass {
        cycles: compiled.cycles(),
        frames,
        degradation: compiled.stats.degradation,
    }
}

/// Partitions a compile failure into designer feedback vs compiler bug.
///
/// Parse/sema/lowering/scheduling/register-pressure/program-memory
/// failures are the paper's legitimate feasibility feedback — a random
/// core may simply be too small for a workload. Dependence-analysis and
/// encoding failures are **not**: they mean an earlier stage *accepted*
/// the program and then handed an inconsistent artifact downstream
/// (e.g. a cyclic dependence graph, an RT whose operation is missing
/// from its own OPU's opcode table). Classifying those as `Infeasible`
/// would let such regressions hide inside the fleet's green
/// zero-mismatch verdict, so they are bugs — `Mismatch` — too.
fn classify_error(e: CompileError) -> CellOutcome {
    match e {
        CompileError::Deps(_) | CompileError::Encode(_) => {
            CellOutcome::Mismatch(format!("pipeline internal error: {e}"))
        }
        _ => CellOutcome::Infeasible(e.to_string()),
    }
}

/// Renders a contained panic payload. `panic!` with a literal or a
/// formatted string covers effectively every payload the compiler can
/// produce; anything else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// The command that reruns exactly one quarantined cell outside the
/// fleet, for debugging.
fn repro_command(seed: u64, app: &str, frames: u32) -> String {
    format!(
        "cargo run --example conform -- --seeds 1 --start {seed} --apps {app} --frames {frames}"
    )
}

/// The repro command for a merged-core cell (decimal seeds, like
/// `--start`).
fn merged_repro_command(a: u64, b: u64, app: &str, frames: u32) -> String {
    format!("cargo run --example conform -- --merge-pairs {a}+{b} --apps {app} --frames {frames}")
}

/// A quarantined merged cell's message embeds a single-seed repro command
/// (the runner only knows `seed`); append the merged-core spelling so the
/// printed command actually reproduces the cell.
fn fix_merged_repro(outcome: CellOutcome, a: u64, b: u64, app: &str, frames: u32) -> CellOutcome {
    let hint = |m: String| {
        format!(
            "{m}; merged-core cell, repro: {}",
            merged_repro_command(a, b, app, frames)
        )
    };
    match outcome {
        CellOutcome::Exhausted(m) => CellOutcome::Exhausted(hint(m)),
        CellOutcome::Panicked { message } => CellOutcome::Panicked {
            message: hint(message),
        },
        other => other,
    }
}

/// The deterministic stimulus stream of a cell: a named substream of the
/// core seed, decoupled per app name so cells never share samples.
/// Shared with the fault audit ([`crate::fault`]) so injected faults are
/// hunted with exactly the stimulus the fleet would use.
pub(crate) fn stimulus_rng(seed: u64, app: &str) -> SplitMix64 {
    let tag = dspcc_arch::Fnv64::of_parts(|h| h.write_text(app));
    SplitMix64::substream(seed, tag)
}

/// The conformance table: one cell per `(seed, app)`, seed-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformReport {
    /// Corpus app names, in column order.
    pub apps: Vec<String>,
    /// All cells, in deterministic (seed-major) order.
    pub cells: Vec<ConformCell>,
}

impl ConformReport {
    /// Cells that passed.
    pub fn passes(&self) -> impl Iterator<Item = &ConformCell> {
        self.cells.iter().filter(|c| c.outcome.is_pass())
    }

    /// Passing cells whose schedule was served by a fuel-degraded
    /// search — still bit-exact, but flagged so a fleet run under tight
    /// fuel cannot silently masquerade as a full-quality sweep.
    pub fn degraded_passes(&self) -> impl Iterator<Item = &ConformCell> {
        self.cells.iter().filter(|c| c.outcome.is_degraded_pass())
    }

    /// Cells the pipeline rejected.
    pub fn infeasible(&self) -> impl Iterator<Item = &ConformCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Infeasible(_)))
    }

    /// Cells that diverged — each one a bug with a `(seed, app)` repro.
    pub fn mismatches(&self) -> impl Iterator<Item = &ConformCell> {
        self.cells.iter().filter(|c| c.outcome.is_mismatch())
    }

    /// Quarantined cells (contained panics and fuel exhaustion) — the
    /// sweep completed around them, each carries a repro command.
    pub fn quarantined(&self) -> impl Iterator<Item = &ConformCell> {
        self.cells.iter().filter(|c| c.outcome.is_quarantined())
    }
}

impl fmt::Display for ConformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>18}", "core")?;
        for app in &self.apps {
            write!(f, " {app:>9}")?;
        }
        writeln!(f)?;
        for row in self.cells.chunks(self.apps.len().max(1)) {
            write!(f, "{:>18}", row[0].core_label())?;
            for cell in row {
                match &cell.outcome {
                    CellOutcome::Pass {
                        cycles,
                        degradation,
                        ..
                    } => {
                        let tag = if degradation.is_some() { "ok*" } else { "ok" };
                        write!(f, " {:>9}", format!("{tag}/{cycles}"))?
                    }
                    CellOutcome::Infeasible(_) => write!(f, " {:>9}", "infeas")?,
                    CellOutcome::Mismatch(_) => write!(f, " {:>9}", "MISMATCH")?,
                    CellOutcome::Exhausted(_) => write!(f, " {:>9}", "EXHAUST")?,
                    CellOutcome::Panicked { .. } => write!(f, " {:>9}", "PANIC")?,
                }
            }
            writeln!(f)?;
        }
        for cell in self.mismatches() {
            writeln!(
                f,
                "MISMATCH core={} app={}: {}",
                cell.core_label(),
                cell.app,
                match &cell.outcome {
                    CellOutcome::Mismatch(m) => m.as_str(),
                    _ => unreachable!(),
                }
            )?;
        }
        for cell in self.quarantined() {
            let (tag, detail) = match &cell.outcome {
                CellOutcome::Panicked { message } => ("PANIC", message.as_str()),
                CellOutcome::Exhausted(m) => ("EXHAUSTED", m.as_str()),
                _ => unreachable!(),
            };
            writeln!(
                f,
                "{tag} core={} app={}: {detail}",
                cell.core_label(),
                cell.app
            )?;
        }
        for cell in self.degraded_passes() {
            if let CellOutcome::Pass {
                degradation: Some(d),
                ..
            } = &cell.outcome
            {
                writeln!(
                    f,
                    "DEGRADED core={} app={}: bit-exact, but {d}",
                    cell.core_label(),
                    cell.app
                )?;
            }
        }
        write!(
            f,
            "{} cells: {} pass ({} degraded), {} infeasible, {} mismatch, {} quarantined",
            self.cells.len(),
            self.passes().count(),
            self.degraded_passes().count(),
            self.infeasible().count(),
            self.mismatches().count(),
            self.quarantined().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_cell_is_quarantined_and_sweep_completes() {
        let fleet = ConformFleet::new()
            .seed_range(0..4)
            .app("fir4", crate::apps::fir(4))
            .frames(2)
            .threads(2);
        let report = fleet.run_with(|session, core, seed, app, source, frames, options| {
            if seed == 2 {
                panic!("injected cell panic for seed {seed}");
            }
            conform_cell(session, core, seed, app, source, frames, options)
        });
        assert_eq!(report.cells.len(), 4);
        let quarantined: Vec<_> = report.quarantined().collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].seed, 2);
        match &quarantined[0].outcome {
            CellOutcome::Panicked { message } => {
                assert!(message.contains("injected cell panic"), "{message}");
                assert!(message.contains("repro:"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Every other cell still verified normally through the shared
        // session — the panic neither stopped the sweep nor poisoned it.
        assert_eq!(report.passes().count() + report.infeasible().count(), 3);
        let rendered = report.to_string();
        assert!(rendered.contains("PANIC"), "{rendered}");
        assert!(rendered.contains("quarantined"), "{rendered}");
    }

    #[test]
    fn small_fleet_runs_clean() {
        let report = ConformFleet::new()
            .seed_range(0..4)
            .app("fir4", crate::apps::fir(4))
            .frames(4)
            .run();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.mismatches().count(), 0, "{report}");
        // The display renders a full table.
        let rendered = report.to_string();
        assert!(rendered.contains("cells:"), "{rendered}");
    }

    #[test]
    fn merged_pairs_mode_tags_cells_and_runs_clean() {
        let report = ConformFleet::new()
            .seed_range(0..2)
            .merged_pairs([(0, 1)])
            .app("fir4", crate::apps::fir(4))
            .frames(4)
            .run();
        // Two single-seed rows, then the merged row.
        assert_eq!(report.cells.len(), 3);
        assert_eq!(report.cells[0].merged_with, None);
        assert_eq!(report.cells[1].merged_with, None);
        assert_eq!(report.cells[2].merged_with, Some(1));
        assert_eq!(report.cells[2].seed, 0);
        assert_eq!(report.cells[2].core_label(), "0+1");
        assert_eq!(report.mismatches().count(), 0, "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("0+1"), "{rendered}");
    }

    #[test]
    fn merged_only_fleet_is_deterministic_across_thread_counts() {
        let fleet = ConformFleet::new()
            .merged_pairs([(0, 1), (2, 3)])
            .app("sop4", crate::apps::sum_of_products(4))
            .frames(4);
        let serial = fleet.clone().threads(1).run();
        let parallel = fleet.threads(4).run();
        assert_eq!(serial, parallel);
        assert_eq!(serial.cells.len(), 2);
        assert_eq!(serial.mismatches().count(), 0, "{serial}");
    }

    #[test]
    fn quarantined_merged_cell_carries_a_merged_repro() {
        let fleet = ConformFleet::new()
            .merged_pairs([(0, 1)])
            .app("fir4", crate::apps::fir(4))
            .frames(2);
        let report = fleet.run_with(|_, _, _, _, _, _, _| panic!("boom"));
        assert_eq!(report.cells.len(), 1);
        match &report.cells[0].outcome {
            CellOutcome::Panicked { message } => {
                assert!(message.contains("--merge-pairs 0+1"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn fleet_is_deterministic_across_thread_counts() {
        let fleet = ConformFleet::new()
            .seed_range(0..6)
            .app("sop4", crate::apps::sum_of_products(4))
            .app("fir3", crate::apps::fir(3))
            .frames(4);
        let serial = fleet.clone().threads(1).run();
        let parallel = fleet.threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn infeasible_cells_state_a_reason() {
        // The audio application on tightly-budgeted options: cores whose
        // controller or RAM cannot host it must say why.
        let fleet = ConformFleet::new()
            .seed_range(0..8)
            .app("audio", crate::apps::audio_application())
            .frames(2)
            .options(CompileOptions {
                budget: Some(4), // absurdly tight: every cell infeasible
                restarts: 1,
                sched_threads: 1,
                ..CompileOptions::default()
            });
        let report = fleet.run();
        assert_eq!(report.mismatches().count(), 0, "{report}");
        for cell in report.infeasible() {
            match &cell.outcome {
                CellOutcome::Infeasible(reason) => assert!(!reason.is_empty()),
                _ => unreachable!(),
            }
        }
        assert!(report.infeasible().count() > 0);
    }

    #[test]
    fn internal_pipeline_errors_classify_as_bugs_not_infeasibility() {
        // Feasibility feedback stays designer-facing…
        let schedule = CompileError::Schedule(dspcc_sched::SchedError::BudgetExceeded {
            budget: 4,
            unplaced: 9,
        });
        assert!(matches!(
            classify_error(schedule),
            CellOutcome::Infeasible(_)
        ));
        let lower = CompileError::Lower(dspcc_rtgen::LowerError::MissingUnit("RAM"));
        assert!(matches!(classify_error(lower), CellOutcome::Infeasible(_)));
        // …but a stage handing inconsistent artifacts downstream is a bug
        // by construction and must not hide in the Infeasible bucket.
        let deps = CompileError::Deps("dependence cycle".to_owned());
        assert!(classify_error(deps).is_mismatch());
        let encode = CompileError::Encode(dspcc_encode::EncodeError::UnknownOp {
            opu: "alu".to_owned(),
            op: "mult".to_owned(),
        });
        match classify_error(encode) {
            CellOutcome::Mismatch(m) => assert!(m.contains("internal error"), "{m}"),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cell_outcome_helpers() {
        let full = CellOutcome::Pass {
            cycles: 3,
            frames: 8,
            degradation: None,
        };
        assert!(full.is_pass());
        assert!(!full.is_degraded_pass());
        let degraded = CellOutcome::Pass {
            cycles: 3,
            frames: 8,
            degradation: Some(dspcc_sched::Degradation {
                stage: "schedule",
                spent: 100,
                action: dspcc_sched::DegradeAction::ExactToHeuristic { nodes_explored: 7 },
            }),
        };
        assert!(degraded.is_pass());
        assert!(degraded.is_degraded_pass());
        assert!(!CellOutcome::Infeasible("x".into()).is_pass());
        assert!(CellOutcome::Mismatch("y".into()).is_mismatch());
    }

    #[test]
    fn degraded_pass_surfaces_in_report() {
        // A starvation-level fuel cap forces the exact search to degrade
        // while the heuristic fallback still finds a valid (bit-exact)
        // schedule — the fleet must say so rather than reporting a clean
        // full-quality pass.
        let report = ConformFleet::new()
            .seed_range(0..2)
            .app("fir4", crate::apps::fir(4))
            .frames(2)
            .options(CompileOptions {
                exact: true,
                fuel: Some(1),
                restarts: 1,
                sched_threads: 1,
                ..CompileOptions::default()
            })
            .run();
        assert_eq!(report.mismatches().count(), 0, "{report}");
        if report.degraded_passes().count() > 0 {
            let rendered = report.to_string();
            assert!(rendered.contains("ok*/"), "{rendered}");
            assert!(rendered.contains("DEGRADED"), "{rendered}");
            assert!(rendered.contains("degraded)"), "{rendered}");
        }
    }
}
