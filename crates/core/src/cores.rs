//! Ready-made in-house cores.
//!
//! * [`audio_core`] — the digital-audio core of the paper's figure 8:
//!   RAM, MULT, ALU (with clip), ROM, ACU, PRG_C, one input port (IPB) and
//!   two output ports (OPB₁, OPB₂), distributed register files with
//!   single-cycle random read/write, and the stripped controller (no
//!   conditionals). [`audio_isa`] builds its section-7 instruction set:
//!   13 raw RT classes merged to 9, desired types
//!   `{A,D,X,G,Y,L,M}`, `{B,D,X,G,Y,L,M}`, `{C,D,X,G,Y,L,M}` plus
//!   sub-instructions, which yields exactly one artificial resource `ABC`.
//! * [`tiny_core`] — a minimal teaching core for quickstarts.
//! * [`unmerged_intermediate`] — an intermediate-architecture variant
//!   (dedicated files and buses per OPU) for the merging experiments.
//! * [`generated_core`] — seeded random-but-valid cores from
//!   `dspcc_arch::generate` + `dspcc_isa::derive`, the unit of the
//!   conformance fleet ([`crate::conform`]).
//!
//! The hand-written teaching cores are expressed through the generator's
//! [`ArchPlan`] blueprint, so hand-written and generated datapaths share
//! one validation path.

use dspcc_arch::merge::{self, MergeError};
use dspcc_arch::{
    ArchPlan, Controller, CoreGenerator, Datapath, DatapathBuilder, Fnv64, GeneratedArch, OpuKind,
    RfPlan, UnitPlan,
};
use dspcc_isa::{derive_isa, Classification, CoverStrategy, InstructionSet};
use dspcc_num::WordFormat;

use crate::pipeline::Core;

/// Builds the figure-8 digital-audio core.
///
/// The register-file sizes are chosen so that the figure-7 application
/// fits exactly; enlarging them never hurts correctness, only silicon.
pub fn audio_core() -> Core {
    let dp = audio_datapath();
    let (classification, iset) = audio_isa(&dp);
    Core {
        name: "audio".to_owned(),
        datapath: dp,
        controller: Controller::stripped(128),
        format: WordFormat::q15(),
        classification: Some(classification),
        instruction_set: Some(iset),
        cover: CoverStrategy::GreedyMaximal,
    }
}

/// The raw datapath of the audio core (figure 8, paper order: IPB, OPB₁,
/// OPB₂, ACU, RAM, MULT, ALU, ROM, PRG_C).
pub fn audio_datapath() -> Datapath {
    DatapathBuilder::new()
        .register_file("rf_acu_base", 2)
        .register_file("rf_acu_off", 8)
        .register_file("rf_ram_addr", 8)
        .register_file("rf_ram_data", 8)
        .register_file("rf_mult_c", 12)
        .register_file("rf_mult_x", 12)
        .register_file("rf_alu_a", 12)
        .register_file("rf_alu_b", 12)
        .register_file("rf_opb_1", 4)
        .register_file("rf_opb_2", 4)
        .opu(OpuKind::Input, "ipb", &[("read", 1)])
        .output("ipb", "bus_ipb")
        .opu(OpuKind::Output, "opb_1", &[("write", 1)])
        .inputs("opb_1", &["rf_opb_1"])
        .opu(OpuKind::Output, "opb_2", &[("write", 1)])
        .inputs("opb_2", &["rf_opb_2"])
        .opu(OpuKind::Acu, "acu", &[("addmod", 1)])
        .inputs("acu", &["rf_acu_base", "rf_acu_off"])
        .output("acu", "bus_acu")
        .opu(OpuKind::Ram, "ram", &[("read", 1), ("write", 1)])
        .memory("ram", 64)
        .inputs("ram", &["rf_ram_addr", "rf_ram_data"])
        .output("ram", "bus_ram")
        .opu(OpuKind::Mult, "mult", &[("mult", 1)])
        .inputs("mult", &["rf_mult_c", "rf_mult_x"])
        .output("mult", "bus_mult")
        .opu(
            OpuKind::Alu,
            "alu",
            &[
                ("add", 1),
                ("add_clip", 1),
                ("sub", 1),
                ("pass", 1),
                ("pass_clip", 1),
            ],
        )
        .inputs("alu", &["rf_alu_a", "rf_alu_b"])
        .output("alu", "bus_alu")
        .opu(OpuKind::Rom, "rom", &[("const", 1)])
        .memory("rom", 64)
        .output("rom", "bus_rom")
        .opu(OpuKind::ProgConst, "prgc", &[("const", 1)])
        .output("prgc", "bus_prgc")
        .write_port("rf_acu_base", &["bus_acu"])
        .write_port("rf_acu_off", &["bus_prgc"])
        .write_port("rf_ram_addr", &["bus_acu"])
        .write_port("rf_ram_data", &["bus_alu", "bus_ipb"])
        .write_port("rf_mult_c", &["bus_rom", "bus_prgc"])
        .write_port("rf_mult_x", &["bus_ram", "bus_ipb", "bus_alu"])
        .write_port(
            "rf_alu_a",
            &["bus_mult", "bus_ram", "bus_ipb", "bus_prgc", "bus_alu"],
        )
        .write_port("rf_alu_b", &["bus_alu", "bus_mult", "bus_ram"])
        .write_port("rf_opb_1", &["bus_alu"])
        .write_port("rf_opb_2", &["bus_alu"])
        .build()
        .expect("audio core datapath is valid")
}

/// The section-7 RT classification and instruction set of the audio core.
///
/// Identification yields 13 classes; RAM's read/write merge into `X` and
/// the four ALU operations into `Y`, with `sub` folded into `Y` as well
/// (the class table of the paper lists Add/AddClip/Pass/PassClip; our ALU
/// also subtracts, which changes nothing structurally). The IO classes
/// `A`, `B`, `C` are mutually exclusive — "it is sufficient to be able to
/// do input via the IPB or output via the OPB_1 or output via the OPB_2
/// but not simultaneously".
pub fn audio_isa(dp: &Datapath) -> (Classification, InstructionSet) {
    let mut c = Classification::identify(dp);
    assert_eq!(
        c.len(),
        14,
        "audio core identifies 14 raw (OPU, op) classes"
    );
    // Figure-5 style letters follow declaration order:
    // A=ipb.read, B=opb_1.write, C=opb_2.write, D=acu.addmod,
    // E=ram.read, F=ram.write, G=mult.mult,
    // H..L = alu.{add,add_clip,pass,pass_clip,sub}, M=rom.const,
    // N=prgc.const.
    c.merge(&["E", "F"], "X").expect("RAM classes merge");
    c.merge(&["H", "I", "J", "K", "L"], "Y")
        .expect("ALU classes merge");
    // Re-letter the constant units to the paper's names.
    let rom = c.by_name("M").expect("rom class");
    c.rename(rom, "L");
    let prgc = c.by_name("N").expect("prgc class");
    c.rename(prgc, "M");
    assert_eq!(c.len(), 9, "merged classification has 9 classes");

    let id = |name: &str| c.by_name(name).expect("class exists").0;
    let (a, b, cc) = (id("A"), id("B"), id("C"));
    let (d, x, g, y, l, m) = (id("D"), id("X"), id("G"), id("Y"), id("L"), id("M"));
    let iset = InstructionSet::closure(
        c.len(),
        &[
            vec![a, d, x, g, y, l, m],
            vec![b, d, x, g, y, l, m],
            vec![cc, d, x, g, y, l, m],
        ],
    );
    (c, iset)
}

/// The full ALU operation set shared by the hand-written cores.
const ALU_OPS: [(&str, u32); 5] = [
    ("add", 1),
    ("add_clip", 1),
    ("sub", 1),
    ("pass", 1),
    ("pass_clip", 1),
];

/// A minimal core for quickstarts: IPB → MULT/ALU → OPB with a small ROM
/// and program-constant unit, no RAM (no delay lines).
///
/// Expressed as an [`ArchPlan`] — the same blueprint substrate (and thus
/// the same validation path) the seeded generator materialises through.
pub fn tiny_core() -> Core {
    let dp = ArchPlan::new()
        .rf(RfPlan::new("rf_mult_c", 4, &["bus_rom", "bus_prgc"]))
        .rf(RfPlan::new("rf_mult_x", 4, &["bus_ipb", "bus_alu"]))
        .rf(RfPlan::new(
            "rf_alu_a",
            4,
            &["bus_mult", "bus_ipb", "bus_prgc", "bus_alu"],
        ))
        .rf(RfPlan::new(
            "rf_alu_b",
            4,
            &["bus_alu", "bus_mult", "bus_ipb"],
        ))
        .rf(RfPlan::new("rf_opb", 2, &["bus_alu"]))
        .unit(UnitPlan::new(OpuKind::Input, "ipb", &[("read", 1)]).bus("bus_ipb"))
        .unit(UnitPlan::new(OpuKind::Output, "opb", &[("write", 1)]).inputs(&["rf_opb"]))
        .unit(
            UnitPlan::new(OpuKind::Mult, "mult", &[("mult", 1)])
                .inputs(&["rf_mult_c", "rf_mult_x"])
                .bus("bus_mult"),
        )
        .unit(
            UnitPlan::new(OpuKind::Alu, "alu", &ALU_OPS)
                .inputs(&["rf_alu_a", "rf_alu_b"])
                .bus("bus_alu"),
        )
        .unit(
            UnitPlan::new(OpuKind::Rom, "rom", &[("const", 1)])
                .bus("bus_rom")
                .memory(16),
        )
        .unit(UnitPlan::new(OpuKind::ProgConst, "prgc", &[("const", 1)]).bus("bus_prgc"))
        .build()
        .expect("tiny core datapath is valid");
    Core {
        name: "tiny".to_owned(),
        datapath: dp,
        controller: Controller::stripped(32),
        format: WordFormat::q15(),
        classification: None,
        instruction_set: None,
        cover: CoverStrategy::GreedyMaximal,
    }
}

/// An intermediate-architecture core (paper section 4): two ALUs, each
/// with dedicated register files and a dedicated result bus — the shape RT
/// generation natively targets before merging reduces it to a real core.
///
/// Expressed as an [`ArchPlan`], like [`tiny_core`].
pub fn unmerged_intermediate() -> Core {
    let dp = ArchPlan::new()
        .rf(RfPlan::new(
            "rf_a1_x",
            6,
            &["bus_ipb", "bus_alu_1", "bus_alu_2", "bus_prgc"],
        ))
        .rf(RfPlan::new(
            "rf_a1_y",
            6,
            &["bus_ipb", "bus_alu_1", "bus_alu_2"],
        ))
        .rf(RfPlan::new(
            "rf_a2_x",
            6,
            &["bus_ipb", "bus_alu_1", "bus_alu_2", "bus_prgc"],
        ))
        .rf(RfPlan::new(
            "rf_a2_y",
            6,
            &["bus_ipb", "bus_alu_1", "bus_alu_2"],
        ))
        .rf(RfPlan::new("rf_out", 4, &["bus_alu_1", "bus_alu_2"]))
        .unit(UnitPlan::new(OpuKind::Input, "ipb", &[("read", 1)]).bus("bus_ipb"))
        .unit(UnitPlan::new(OpuKind::Output, "opb", &[("write", 1)]).inputs(&["rf_out"]))
        .unit(
            UnitPlan::new(OpuKind::Alu, "alu_1", &ALU_OPS)
                .inputs(&["rf_a1_x", "rf_a1_y"])
                .bus("bus_alu_1"),
        )
        .unit(
            UnitPlan::new(OpuKind::Alu, "alu_2", &ALU_OPS)
                .inputs(&["rf_a2_x", "rf_a2_y"])
                .bus("bus_alu_2"),
        )
        .unit(UnitPlan::new(OpuKind::ProgConst, "prgc", &[("const", 1)]).bus("bus_prgc"))
        .build()
        .expect("intermediate datapath is valid");
    Core {
        name: "intermediate".to_owned(),
        datapath: dp,
        controller: Controller::stripped(128),
        format: WordFormat::q15(),
        classification: None,
        instruction_set: None,
        cover: CoverStrategy::GreedyMaximal,
    }
}

/// A seeded random-but-valid core: the architecture from
/// [`dspcc_arch::generate::CoreGenerator`] plus the instruction set
/// derived by [`dspcc_isa::derive_isa`] — the unit of the conformance
/// fleet ([`crate::conform`]).
///
/// Deterministic: the same seed yields a byte-identical core on every
/// run, platform, and thread.
pub fn generated_core(seed: u64) -> Core {
    generated_core_from(CoreGenerator::new().generate(seed))
}

/// As [`generated_core`], from an already-generated architecture (e.g.
/// one drawn with a custom [`dspcc_arch::GenConfig`]).
pub fn generated_core_from(arch: GeneratedArch) -> Core {
    let isa = derive_isa(&arch.datapath, arch.seed);
    Core {
        name: format!("gen_{:x}", arch.seed),
        datapath: arch.datapath,
        controller: arch.controller,
        format: WordFormat::new(arch.word_width).expect("generator draws valid widths"),
        classification: Some(isa.classification),
        instruction_set: isa.instruction_set,
        cover: isa.cover,
    }
}

/// Merges two seeded generated cores into one machine that can run both
/// apps — the paper's in-house workflow: specialize per application,
/// then fold the specialized cores together.
///
/// The datapaths are joined with [`dspcc_arch::merge::union`] (same-name
/// structural union: max capacities, min latencies, op/flag union), the
/// controllers take their least upper bound, the word format the wider
/// of the two, and the instruction set is **re-derived** on the union
/// datapath under a seed fingerprinted from both donors — a merged core
/// is a new architecture, not either donor's ISA.
///
/// Deterministic: same `(seed_a, seed_b)`, byte-identical core.
///
/// # Errors
///
/// [`MergeError`] if the two datapaths disagree structurally at a shared
/// component name or the union fails validation.
pub fn merged_core(seed_a: u64, seed_b: u64) -> Result<Core, MergeError> {
    let gen = CoreGenerator::new();
    let a = gen.generate(seed_a);
    let b = gen.generate(seed_b);
    let dp = merge::union(&a.datapath, &b.datapath)?;
    let isa_seed = Fnv64::of_parts(|h| {
        h.write_u64(seed_a);
        h.write_u64(seed_b);
    });
    let isa = derive_isa(&dp, isa_seed);
    Ok(Core {
        name: format!("gen_{seed_a:x}+gen_{seed_b:x}"),
        datapath: dp,
        controller: a.controller.merged(&b.controller),
        format: WordFormat::new(a.word_width.max(b.word_width))
            .expect("generator draws valid widths"),
        classification: Some(isa.classification),
        instruction_set: isa.instruction_set,
        cover: isa.cover,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dspcc_isa::{artificial_resources, ClassId};

    #[test]
    fn audio_core_is_valid() {
        let core = audio_core();
        assert_eq!(core.datapath.opus().len(), 9);
        assert!(!core.controller.supports_conditionals());
        assert_eq!(core.format, WordFormat::q15());
    }

    #[test]
    fn audio_classification_merges_13ish_to_9() {
        // The paper counts 13 classes because its ALU has four operations;
        // ours adds `sub` (14 raw), merged identically down to 9.
        let dp = audio_datapath();
        let (c, _) = audio_isa(&dp);
        assert_eq!(c.len(), 9);
        let names: Vec<&str> = c.classes().iter().map(|cl| cl.name()).collect();
        for expected in ["A", "B", "C", "D", "G", "X", "Y", "L", "M"] {
            assert!(
                names.contains(&expected),
                "missing class {expected}: {names:?}"
            );
        }
        // X covers both RAM usages; Y all five ALU usages.
        let x = c.class(c.by_name("X").unwrap());
        assert_eq!(x.usages().count(), 2);
        let y = c.class(c.by_name("Y").unwrap());
        assert_eq!(y.usages().count(), 5);
    }

    #[test]
    fn audio_iset_validates_and_conflicts_only_io() {
        let dp = audio_datapath();
        let (c, iset) = audio_isa(&dp);
        iset.validate().unwrap();
        let g = iset.conflict_graph();
        // Exactly the three IO pairs conflict: A-B, A-C, B-C.
        assert_eq!(g.edge_count(), 3);
        let a = c.by_name("A").unwrap().0;
        let b = c.by_name("B").unwrap().0;
        let cc = c.by_name("C").unwrap().0;
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(a, cc));
        assert!(g.has_edge(b, cc));
    }

    #[test]
    fn audio_iset_needs_single_artificial_resource_abc() {
        // "A single artificial resource 'ABC' is required to model the
        // instruction set restrictions."
        let dp = audio_datapath();
        let (c, iset) = audio_isa(&dp);
        let ars = artificial_resources(&iset, &c, CoverStrategy::GreedyMaximal);
        assert_eq!(ars.len(), 1);
        assert_eq!(ars[0].name(), "ABC");
        assert_eq!(ars[0].members().len(), 3);
    }

    #[test]
    fn audio_iset_allows_the_full_parallel_instruction() {
        let dp = audio_datapath();
        let (c, iset) = audio_isa(&dp);
        let ids: Vec<ClassId> = ["A", "D", "X", "G", "Y", "L", "M"]
            .iter()
            .map(|n| c.by_name(n).unwrap())
            .collect();
        assert!(iset.allows(&ids));
        // But A and B never together.
        let ab = vec![c.by_name("A").unwrap(), c.by_name("B").unwrap()];
        assert!(!iset.allows(&ab));
    }

    #[test]
    fn tiny_and_intermediate_cores_valid() {
        let t = tiny_core();
        assert!(t.datapath.opu("alu").is_some());
        assert!(t.instruction_set.is_none());
        let i = unmerged_intermediate();
        assert_eq!(i.datapath.opus_supporting("add").len(), 2);
    }

    #[test]
    fn merged_core_is_deterministic_and_covers_both_donors() {
        let gen = CoreGenerator::new();
        let (a, b) = (gen.generate(3), gen.generate(7));
        let m = merged_core(3, 7).unwrap();
        assert_eq!(m.name, "gen_3+gen_7");
        // Every donor component survives into the union.
        for donor in [&a, &b] {
            for opu in donor.datapath.opus() {
                let u = m.datapath.opu(opu.name()).unwrap();
                for (op, latency) in opu.ops() {
                    assert!(u.latency_of(op).unwrap() <= latency);
                }
            }
            for rf in donor.datapath.register_files() {
                assert!(m.datapath.register_file(rf.name()).unwrap().size() >= rf.size());
            }
        }
        assert!(m.controller.program_depth() >= a.controller.program_depth());
        assert!(m.format.width() >= a.word_width.max(b.word_width));
        // Byte-determinism across calls.
        let m2 = merged_core(3, 7).unwrap();
        assert_eq!(m.datapath.fingerprint(), m2.datapath.fingerprint());
        assert_eq!(m.controller.fingerprint(), m2.controller.fingerprint());
    }
}
