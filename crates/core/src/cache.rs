//! Crash-safe persistent artifact cache.
//!
//! Stage artifacts (today: schedule and encode, the two expensive tail
//! stages) are serialized under their existing FNV-1a content
//! fingerprints into a cache directory. The write path is atomic —
//! entries are staged to a temp file and renamed into place — and every
//! entry carries a versioned header with a checksum of the payload, so
//! torn writes, bit-rot, truncation and format drift are all *detected*
//! on load rather than served. A detected-bad entry is quarantined into
//! a `corrupt/` subdirectory next to a `.reason` file and the stage is
//! recomputed: a corrupt cache can cost time but can never corrupt
//! output.
//!
//! All filesystem access goes through the [`CacheBackend`] trait so the
//! chaos harness ([`ChaosBackend`], driven by `dspcc::fault_io`) can
//! inject seeded I/O faults — torn write at byte *k*, flipped byte,
//! ENOSPC, delayed read, vanished file, transient read error — under
//! the real recovery machinery.
//!
//! ## On-disk entry format (version 1)
//!
//! | bytes | field       | value                                   |
//! |-------|-------------|-----------------------------------------|
//! | 4     | magic       | `"DSPC"`                                |
//! | 4     | version     | `1` (u32 LE)                            |
//! | 4+n   | stage       | length-prefixed UTF-8 stage name        |
//! | 8     | key         | the stage fingerprint (u64 LE)          |
//! | 8     | payload_len | payload byte count (u64 LE)             |
//! | 8     | checksum    | FNV-1a over the payload bytes (u64 LE)  |
//! | n     | payload     | stage-specific codec output             |
//!
//! Any header-field mismatch (wrong magic / version / stage / key /
//! length) or checksum failure quarantines the entry. The payload codec
//! itself ([`encode_schedule_artifact`] & friends) is length-prefixed
//! throughout, so a checksum-passing-but-undecodable payload (format
//! drift inside one version) is also caught and quarantined.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dspcc_arch::{Fnv64, SplitMix64};
use dspcc_encode::{FieldLayout, Microcode, Word};
use dspcc_ir::RtId;
use dspcc_num::WordFormat;
use dspcc_sched::{Degradation, DegradeAction, Schedule};

use crate::pipeline::Core;
use crate::stages::{EncodeArtifact, ScheduleArtifact};

/// Entry-format magic bytes.
pub const ENTRY_MAGIC: [u8; 4] = *b"DSPC";
/// Entry-format version. Bump when a payload codec changes shape; old
/// entries are then detected as `version mismatch` and recomputed.
pub const ENTRY_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Backend trait
// ---------------------------------------------------------------------------

/// The filesystem primitives [`DiskCache`] uses, factored behind a
/// trait so fault injection can wrap them. Implementations must be
/// thread-safe; the cache is shared across compile workers.
pub trait CacheBackend: Send + Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `bytes` to `path`, creating or truncating it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl CacheBackend for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

// ---------------------------------------------------------------------------
// Chaos backend
// ---------------------------------------------------------------------------

/// The I/O fault vocabulary the chaos harness drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// A write persists only its first *k* bytes (crash mid-write).
    TornWrite,
    /// One byte of a written file is flipped (bit-rot).
    FlipByte,
    /// Writes fail with `StorageFull` (disk out of space).
    WriteNoSpace,
    /// Reads succeed but are delayed (slow disk).
    ReadDelay,
    /// The file disappears right after it is renamed into place.
    Vanish,
    /// Reads fail with a transient I/O error.
    ReadError,
}

impl IoFaultKind {
    /// Every fault kind, in audit-sweep order.
    pub const ALL: [IoFaultKind; 6] = [
        IoFaultKind::TornWrite,
        IoFaultKind::FlipByte,
        IoFaultKind::WriteNoSpace,
        IoFaultKind::ReadDelay,
        IoFaultKind::Vanish,
        IoFaultKind::ReadError,
    ];

    /// Stable tag (names the substream and shows up in reports).
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::TornWrite => "torn-write",
            IoFaultKind::FlipByte => "flip-byte",
            IoFaultKind::WriteNoSpace => "enospc",
            IoFaultKind::ReadDelay => "read-delay",
            IoFaultKind::Vanish => "vanish",
            IoFaultKind::ReadError => "read-error",
        }
    }
}

impl fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`CacheBackend`] decorator that injects one seeded fault kind.
///
/// Determinism: fault sites and parameters (tear position, flipped
/// byte) are drawn from a [`SplitMix64`] substream of the seed, so a
/// cell replays identically. The *first* eligible operation always
/// faults (a chaos cell that injected nothing proves nothing); later
/// eligible operations fault with 70% probability so different seeds
/// exercise different interleavings of good and bad I/O.
pub struct ChaosBackend {
    inner: Arc<dyn CacheBackend>,
    kind: IoFaultKind,
    rng: Mutex<SplitMix64>,
    injected: AtomicU64,
    eligible: AtomicU64,
    /// For [`IoFaultKind::ReadError`]: remaining reads that will fail.
    /// `u64::MAX` means every read fails.
    read_error_budget: AtomicU64,
}

impl ChaosBackend {
    /// A chaos decorator over `inner` injecting `kind` faults drawn
    /// from `seed`.
    pub fn new(inner: Arc<dyn CacheBackend>, kind: IoFaultKind, seed: u64) -> Self {
        ChaosBackend {
            inner,
            kind,
            rng: Mutex::new(SplitMix64::substream(
                seed,
                Fnv64::of_parts(|h| {
                    h.write_text("chaos-io");
                    h.write_text(kind.name());
                }),
            )),
            injected: AtomicU64::new(0),
            eligible: AtomicU64::new(0),
            read_error_budget: AtomicU64::new(u64::MAX),
        }
    }

    /// Limits [`IoFaultKind::ReadError`] to the first `budget` reads;
    /// later reads succeed. Models a disk that recovers — the service
    /// retry path needs exactly this shape.
    pub fn with_read_error_budget(self, budget: u64) -> Self {
        self.read_error_budget.store(budget, Ordering::SeqCst);
        self
    }

    /// How many faults have been injected so far. The audit uses this
    /// as the existence proof that the cell actually saw chaos.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// True when this operation should fault: always the first
    /// eligible one, 70% of the rest.
    fn fire(&self) -> bool {
        let n = self.eligible.fetch_add(1, Ordering::SeqCst);
        let hit = n == 0 || self.rng.lock().expect("chaos rng lock").chance(70);
        if hit {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        hit
    }
}

impl CacheBackend for ChaosBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.kind {
            IoFaultKind::ReadDelay => {
                if self.fire() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                self.inner.read(path)
            }
            IoFaultKind::ReadError => {
                let budget = self.read_error_budget.load(Ordering::SeqCst);
                if budget > 0 && self.fire() {
                    if budget != u64::MAX {
                        self.read_error_budget.fetch_sub(1, Ordering::SeqCst);
                    }
                    return Err(io::Error::other("injected transient read error"));
                }
                self.inner.read(path)
            }
            _ => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.kind {
            IoFaultKind::TornWrite if self.fire() => {
                let keep = if bytes.is_empty() {
                    0
                } else {
                    // 0 ..= len-1: never persists the full file.
                    self.rng
                        .lock()
                        .expect("chaos rng lock")
                        .range(0, bytes.len() as u32 - 1) as usize
                };
                self.inner.write(path, &bytes[..keep])
            }
            IoFaultKind::FlipByte if !bytes.is_empty() && self.fire() => {
                let mut flipped = bytes.to_vec();
                let (at, bit) = {
                    let mut rng = self.rng.lock().expect("chaos rng lock");
                    (
                        rng.range(0, flipped.len() as u32 - 1) as usize,
                        rng.range(0, 7) as u8,
                    )
                };
                flipped[at] ^= 1 << bit;
                self.inner.write(path, &flipped)
            }
            IoFaultKind::WriteNoSpace if self.fire() => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.write(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)?;
        if self.kind == IoFaultKind::Vanish && self.fire() {
            let _ = self.inner.remove(to);
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
}

// ---------------------------------------------------------------------------
// Byte codec primitives
// ---------------------------------------------------------------------------

/// Little-endian append-only buffer the payload codecs write into.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a u32 (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a u64 (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an i64 (LE, two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn text(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over codec bytes; every accessor is bounds-checked and
/// returns a reason string on underrun or malformed data, which the
/// cache turns into a quarantine.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload underrun: need {n} bytes at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    /// Reads a u32 (LE).
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Reads a u64 (LE).
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
    /// Reads an i64 (LE).
    pub fn i64(&mut self) -> Result<i64, String> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn text(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 in text: {e}"))
    }
    /// Fails unless the whole buffer was consumed (trailing garbage is
    /// as suspicious as truncation).
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Disk cache
// ---------------------------------------------------------------------------

/// What to do when the backend reports a *transient* I/O error (not
/// corruption) on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransientPolicy {
    /// Treat it as a miss and recompute the stage — the standalone
    /// fail-open posture.
    #[default]
    Recompute,
    /// Surface it as `CompileError::CacheIo` so the caller (the
    /// compile service) can retry with backoff instead of stampeding
    /// recomputes onto a sick disk.
    Fail,
}

/// Load outcome, one variant per recovery path.
#[derive(Debug)]
pub enum Load {
    /// Valid entry; the checksum-verified payload bytes.
    Hit(Vec<u8>),
    /// No entry on disk.
    Miss,
    /// Entry failed validation, was quarantined; recompute.
    Corrupt,
    /// Backend I/O error that is not corruption (disk trouble);
    /// handled per [`TransientPolicy`].
    Transient(String),
}

/// Monotonic counters describing cache traffic; every recovery path
/// increments exactly one, so tests can use the snapshot as a witness
/// that a fault was detected and recovered rather than served.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries written (temp + rename completed).
    pub stores: u64,
    /// Store attempts that failed on backend I/O (best-effort: the
    /// compile proceeds, the entry just is not persisted).
    pub store_errors: u64,
    /// Loads that returned a validated payload.
    pub hits: u64,
    /// Loads with no entry on disk.
    pub misses: u64,
    /// Entries that failed validation and were moved to `corrupt/`.
    pub quarantined: u64,
    /// Loads that failed on transient backend I/O.
    pub read_errors: u64,
}

#[derive(Debug, Default)]
struct StatsCells {
    stores: AtomicU64,
    store_errors: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    read_errors: AtomicU64,
}

/// The persistent artifact cache. One instance per cache directory;
/// cheap to clone behind the [`Arc`] the session holds.
pub struct DiskCache {
    root: PathBuf,
    backend: Arc<dyn CacheBackend>,
    policy: TransientPolicy,
    nonce: AtomicU64,
    stats: StatsCells,
}

impl fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskCache")
            .field("root", &self.root)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl DiskCache {
    /// A cache rooted at `root` on the real filesystem.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DiskCache::with_backend(root, Arc::new(StdFs))
    }

    /// A cache rooted at `root` over an explicit backend (tests and
    /// chaos injection).
    pub fn with_backend(root: impl Into<PathBuf>, backend: Arc<dyn CacheBackend>) -> Self {
        DiskCache {
            root: root.into(),
            backend,
            policy: TransientPolicy::default(),
            nonce: AtomicU64::new(0),
            stats: StatsCells::default(),
        }
    }

    /// Sets the transient-error policy (builder style).
    pub fn transient_policy(mut self, policy: TransientPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured transient-error policy.
    pub fn policy(&self) -> TransientPolicy {
        self.policy
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            stores: self.stats.stores.load(Ordering::SeqCst),
            store_errors: self.stats.store_errors.load(Ordering::SeqCst),
            hits: self.stats.hits.load(Ordering::SeqCst),
            misses: self.stats.misses.load(Ordering::SeqCst),
            quarantined: self.stats.quarantined.load(Ordering::SeqCst),
            read_errors: self.stats.read_errors.load(Ordering::SeqCst),
        }
    }

    fn entry_path(&self, stage: &str, key: u64) -> PathBuf {
        self.root.join(stage).join(format!("{key:016x}.bin"))
    }

    fn next_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::SeqCst)
    }

    /// Serializes `payload` under (`stage`, `key`) atomically:
    /// header+payload staged to a temp file, then renamed into place.
    /// Best-effort — a failed store is counted, the temp file cleaned
    /// up, and the compile proceeds unpersisted.
    pub fn store(&self, stage: &str, key: u64, payload: &[u8]) {
        let mut w = ByteWriter::new();
        w.raw(&ENTRY_MAGIC);
        w.u32(ENTRY_VERSION);
        w.text(stage);
        w.u64(key);
        w.u64(payload.len() as u64);
        w.u64(Fnv64::of_parts(|h| h.write_bytes(payload)));
        w.raw(payload);
        let bytes = w.into_bytes();

        let dir = self.root.join(stage);
        let tmp_dir = self.root.join("tmp");
        let tmp = tmp_dir.join(format!(
            "{stage}-{key:016x}-{}-{}.tmp",
            std::process::id(),
            self.next_nonce()
        ));
        let result = self
            .backend
            .create_dir_all(&dir)
            .and_then(|()| self.backend.create_dir_all(&tmp_dir))
            .and_then(|()| self.backend.write(&tmp, &bytes))
            .and_then(|()| self.backend.rename(&tmp, &self.entry_path(stage, key)));
        match result {
            Ok(()) => {
                self.stats.stores.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                self.stats.store_errors.fetch_add(1, Ordering::SeqCst);
                let _ = self.backend.remove(&tmp);
            }
        }
    }

    /// Loads and validates the entry under (`stage`, `key`).
    pub fn load(&self, stage: &str, key: u64) -> Load {
        let path = self.entry_path(stage, key);
        let bytes = match self.backend.read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::SeqCst);
                return Load::Miss;
            }
            Err(e) => {
                self.stats.read_errors.fetch_add(1, Ordering::SeqCst);
                return Load::Transient(format!("read {}: {e}", path.display()));
            }
        };
        match validate_entry(&bytes, stage, key) {
            Ok(payload) => {
                self.stats.hits.fetch_add(1, Ordering::SeqCst);
                Load::Hit(payload.to_vec())
            }
            Err(reason) => {
                self.quarantine(stage, key, &bytes, &reason);
                Load::Corrupt
            }
        }
    }

    /// Moves a bad entry aside into `corrupt/` with a `.reason` file
    /// and removes the live entry so the recompute's store can take
    /// its place. Also the hook the session uses when a
    /// checksum-passing payload fails its codec.
    pub fn quarantine(&self, stage: &str, key: u64, bytes: &[u8], reason: &str) {
        self.stats.quarantined.fetch_add(1, Ordering::SeqCst);
        let dir = self.root.join("corrupt");
        let base = format!("{stage}-{key:016x}-{}", self.next_nonce());
        // Preservation is best-effort: quarantine exists for forensics,
        // and the one non-negotiable step is dropping the live entry.
        let _ = self.backend.create_dir_all(&dir);
        let _ = self.backend.write(&dir.join(format!("{base}.bin")), bytes);
        let _ = self
            .backend
            .write(&dir.join(format!("{base}.reason")), reason.as_bytes());
        let _ = self.backend.remove(&self.entry_path(stage, key));
    }
}

/// Checks every header field and the payload checksum; returns the
/// payload slice or the first failure's reason.
fn validate_entry<'a>(bytes: &'a [u8], stage: &str, key: u64) -> Result<&'a [u8], String> {
    let mut r = ByteReader::new(bytes);
    let magic = match bytes.get(..4) {
        Some(m) => m,
        None => return Err(format!("entry too short: {} bytes", bytes.len())),
    };
    if magic != ENTRY_MAGIC {
        return Err(format!("bad magic {magic:02x?}"));
    }
    r.pos = 4;
    let version = r.u32().map_err(|e| format!("header: {e}"))?;
    if version != ENTRY_VERSION {
        return Err(format!(
            "version mismatch: entry v{version}, expected v{ENTRY_VERSION}"
        ));
    }
    let entry_stage = r.text().map_err(|e| format!("header: {e}"))?;
    if entry_stage != stage {
        return Err(format!(
            "stage mismatch: entry is '{entry_stage}', expected '{stage}'"
        ));
    }
    let entry_key = r.u64().map_err(|e| format!("header: {e}"))?;
    if entry_key != key {
        return Err(format!(
            "key mismatch: entry {entry_key:016x}, expected {key:016x}"
        ));
    }
    let payload_len = r.u64().map_err(|e| format!("header: {e}"))? as usize;
    let checksum = r.u64().map_err(|e| format!("header: {e}"))?;
    let payload = &bytes[r.pos..];
    if payload.len() != payload_len {
        return Err(format!(
            "length mismatch: header says {payload_len} payload bytes, file has {}",
            payload.len()
        ));
    }
    let actual = Fnv64::of_parts(|h| h.write_bytes(payload));
    if actual != checksum {
        return Err(format!(
            "checksum mismatch: header {checksum:016x}, payload hashes to {actual:016x}"
        ));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Stage-artifact codecs
// ---------------------------------------------------------------------------

// Degradation's `stage` is a &'static str; persisted entries map it
// through a tag so decode can recover the interned name.
const DEGRADE_STAGE_SCHEDULE: u8 = 0;

/// Serializes a [`ScheduleArtifact`] payload. Round-trips the *raw*
/// cycle rows (including trailing empties) so the decoded schedule is
/// `==` to the stored one.
pub fn encode_schedule_artifact(artifact: &ScheduleArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let cycles = artifact.schedule.cycles();
    w.u64(cycles.len() as u64);
    for row in cycles {
        w.u32(row.len() as u32);
        for rt in row {
            w.u32(rt.0);
        }
    }
    w.u32(artifact.bound);
    match artifact.degradation {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u8(match d.stage {
                "schedule" => DEGRADE_STAGE_SCHEDULE,
                // Unknown stage names cannot round-trip through the
                // tag; persist the entry as undegraded-marker-less is
                // wrong, so fall back to the schedule tag — today
                // "schedule" is the only producer (see fuel.rs).
                _ => DEGRADE_STAGE_SCHEDULE,
            });
            w.u64(d.spent);
            match d.action {
                DegradeAction::ExactToHeuristic { nodes_explored } => {
                    w.u8(0);
                    w.u64(nodes_explored);
                }
                DegradeAction::SearchTruncated { skipped } => {
                    w.u8(1);
                    w.u64(skipped);
                }
            }
        }
    }
    w.into_bytes()
}

/// Deserializes a [`ScheduleArtifact`] payload. The stage time is
/// reported as zero — disk hits are charged like memo hits.
pub fn decode_schedule_artifact(bytes: &[u8]) -> Result<ScheduleArtifact, String> {
    let mut r = ByteReader::new(bytes);
    let cycle_count = r.u64()? as usize;
    if cycle_count > bytes.len() {
        return Err(format!("implausible cycle count {cycle_count}"));
    }
    let mut cycles = Vec::with_capacity(cycle_count);
    for _ in 0..cycle_count {
        let len = r.u32()? as usize;
        let mut row = Vec::with_capacity(len.min(bytes.len()));
        for _ in 0..len {
            row.push(RtId(r.u32()?));
        }
        cycles.push(row);
    }
    let bound = r.u32()?;
    let degradation = match r.u8()? {
        0 => None,
        1 => {
            let stage = match r.u8()? {
                DEGRADE_STAGE_SCHEDULE => "schedule",
                tag => return Err(format!("unknown degradation stage tag {tag}")),
            };
            let spent = r.u64()?;
            let action = match r.u8()? {
                0 => DegradeAction::ExactToHeuristic {
                    nodes_explored: r.u64()?,
                },
                1 => DegradeAction::SearchTruncated { skipped: r.u64()? },
                tag => return Err(format!("unknown degrade action tag {tag}")),
            };
            Some(Degradation {
                stage,
                spent,
                action,
            })
        }
        tag => return Err(format!("bad degradation option tag {tag}")),
    };
    r.finish()?;
    Ok(ScheduleArtifact {
        schedule: Arc::new(Schedule::from_cycles(cycles)),
        bound,
        degradation,
        time: Duration::ZERO,
    })
}

/// Serializes an [`EncodeArtifact`] payload: microcode words (as raw
/// bit chunks), ROM image, region size, I/O orders and word format.
/// The field layout is *not* stored — it re-derives deterministically
/// from the core on decode (and the encode key already pins the core).
pub fn encode_encode_artifact(artifact: &EncodeArtifact) -> Vec<u8> {
    let mc = &artifact.microcode;
    let mut w = ByteWriter::new();
    w.u64(mc.words.len() as u64);
    for word in &mc.words {
        w.u32(word.width());
        for chunk in word_chunks(word) {
            w.u64(chunk);
        }
    }
    w.u64(mc.rom_image.len() as u64);
    for &v in &mc.rom_image {
        w.i64(v);
    }
    w.u32(mc.region_size);
    for order in [&mc.output_order, &mc.input_order] {
        w.u64(order.len() as u64);
        for (opu, port) in order {
            w.text(opu);
            w.u64(*port as u64);
        }
    }
    w.u32(mc.word_format.width());
    w.into_bytes()
}

/// Deserializes an [`EncodeArtifact`] payload against `core` (needed
/// to re-derive the field layout).
pub fn decode_encode_artifact(bytes: &[u8], core: &Core) -> Result<EncodeArtifact, String> {
    let mut r = ByteReader::new(bytes);
    let layout = FieldLayout::derive(&core.datapath, core.format);
    let word_count = r.u64()? as usize;
    if word_count > bytes.len() {
        return Err(format!("implausible word count {word_count}"));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        let width = r.u32()?;
        if width != layout.width() {
            return Err(format!(
                "word width {width} does not match core's layout width {}",
                layout.width()
            ));
        }
        let mut word = Word::new(width);
        let mut offset = 0u32;
        while offset < width {
            let step = (width - offset).min(64);
            word.set_bits(offset, step, r.u64()?);
            offset += step;
        }
        words.push(word);
    }
    let rom_count = r.u64()? as usize;
    if rom_count > bytes.len() {
        return Err(format!("implausible ROM length {rom_count}"));
    }
    let mut rom_image = Vec::with_capacity(rom_count);
    for _ in 0..rom_count {
        rom_image.push(r.i64()?);
    }
    let region_size = r.u32()?;
    let mut orders: [Vec<(String, usize)>; 2] = [Vec::new(), Vec::new()];
    for order in &mut orders {
        let len = r.u64()? as usize;
        if len > bytes.len() {
            return Err(format!("implausible I/O order length {len}"));
        }
        for _ in 0..len {
            let opu = r.text()?;
            let port = r.u64()? as usize;
            order.push((opu, port));
        }
    }
    let format_width = r.u32()?;
    r.finish()?;
    if format_width != core.format.width() {
        return Err(format!(
            "word format width {format_width} does not match core's {}",
            core.format.width()
        ));
    }
    let word_format = WordFormat::new(format_width).map_err(|e| format!("bad word format: {e}"))?;
    let [output_order, input_order] = orders;
    Ok(EncodeArtifact {
        microcode: Arc::new(Microcode {
            words,
            layout,
            rom_image,
            region_size,
            output_order,
            input_order,
            word_format,
        }),
        time: Duration::ZERO,
    })
}

/// A word's bits as little-endian 64-bit chunks (the inverse of the
/// `set_bits` loop in [`decode_encode_artifact`]).
fn word_chunks(word: &Word) -> Vec<u64> {
    let width = word.width();
    let mut chunks = Vec::with_capacity(width.div_ceil(64) as usize);
    let mut offset = 0u32;
    while offset < width {
        let step = (width - offset).min(64);
        chunks.push(word.bits(offset, step));
        offset += step;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dspcc-cache-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn byte_codec_round_trips() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.text("schedule");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.text().unwrap(), "schedule");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_underrun_and_trailing_garbage() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = ByteReader::new(&[1, 2, 3, 4, 5]);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn store_then_load_round_trips() {
        let root = temp_root("roundtrip");
        let cache = DiskCache::new(&root);
        cache.store("schedule", 0xABCD, b"payload bytes");
        match cache.load("schedule", 0xABCD) {
            Load::Hit(p) => assert_eq!(p, b"payload bytes"),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.stores, stats.hits, stats.quarantined), (1, 1, 0));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let root = temp_root("miss");
        let cache = DiskCache::new(&root);
        assert!(matches!(cache.load("schedule", 1), Load::Miss));
        assert_eq!(cache.stats().misses, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wrong_key_and_wrong_stage_quarantine() {
        let root = temp_root("mismatch");
        let cache = DiskCache::new(&root);
        cache.store("schedule", 5, b"x");
        // Copy the valid entry under a different key: key field now
        // disagrees with the file name it is served under.
        let src = root.join("schedule").join(format!("{:016x}.bin", 5u64));
        let dst = root.join("schedule").join(format!("{:016x}.bin", 6u64));
        std::fs::copy(&src, &dst).unwrap();
        assert!(matches!(cache.load("schedule", 6), Load::Corrupt));
        let dst2 = root.join("encode");
        std::fs::create_dir_all(&dst2).unwrap();
        std::fs::copy(&src, dst2.join(format!("{:016x}.bin", 5u64))).unwrap();
        assert!(matches!(cache.load("encode", 5), Load::Corrupt));
        assert_eq!(cache.stats().quarantined, 2);
        // Quarantine wrote reason files.
        let reasons: Vec<_> = std::fs::read_dir(root.join("corrupt"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "reason"))
            .collect();
        assert_eq!(reasons.len(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let root = temp_root("flip");
        let cache = DiskCache::new(&root);
        cache.store("schedule", 0x42, b"sensitive payload");
        let path = root.join("schedule").join(format!("{:016x}.bin", 0x42u64));
        let clean = std::fs::read(&path).unwrap();
        for at in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[at] ^= 1u8 << bit;
                assert!(
                    validate_entry(&bytes, "schedule", 0x42).is_err(),
                    "flip at byte {at} bit {bit} went undetected"
                );
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let root = temp_root("trunc");
        let cache = DiskCache::new(&root);
        cache.store("encode", 9, b"0123456789");
        let path = root.join("encode").join(format!("{:016x}.bin", 9u64));
        let clean = std::fs::read(&path).unwrap();
        for len in 0..clean.len() {
            assert!(
                validate_entry(&clean[..len], "encode", 9).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chaos_torn_write_quarantines_and_recovers() {
        let root = temp_root("chaos-torn");
        let chaos = Arc::new(ChaosBackend::new(
            Arc::new(StdFs),
            IoFaultKind::TornWrite,
            11,
        ));
        let cache = DiskCache::with_backend(&root, chaos.clone());
        cache.store("schedule", 1, b"payload that will be torn mid-write");
        // First write always faults: the stored entry is torn.
        assert!(chaos.injected() >= 1);
        match cache.load("schedule", 1) {
            Load::Corrupt | Load::Miss => {}
            other => panic!("torn entry served as {other:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chaos_enospc_is_counted_not_fatal() {
        let root = temp_root("chaos-enospc");
        let chaos = Arc::new(ChaosBackend::new(
            Arc::new(StdFs),
            IoFaultKind::WriteNoSpace,
            3,
        ));
        let cache = DiskCache::with_backend(&root, chaos);
        cache.store("schedule", 1, b"never lands");
        assert_eq!(cache.stats().store_errors, 1);
        assert!(matches!(cache.load("schedule", 1), Load::Miss));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chaos_read_error_budget_recovers() {
        let root = temp_root("chaos-readerr");
        let chaos = Arc::new(
            ChaosBackend::new(Arc::new(StdFs), IoFaultKind::ReadError, 7).with_read_error_budget(1),
        );
        let cache = DiskCache::with_backend(&root, chaos);
        cache.store("schedule", 1, b"eventually readable");
        assert!(matches!(cache.load("schedule", 1), Load::Transient(_)));
        match cache.load("schedule", 1) {
            Load::Hit(p) => assert_eq!(p, b"eventually readable"),
            other => panic!("expected recovery, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn schedule_artifact_codec_round_trips() {
        let mut schedule = Schedule::from_cycles(vec![
            vec![RtId(3), RtId(1)],
            vec![],
            vec![RtId(7)],
            vec![], // trailing empty row must survive the round trip
        ]);
        schedule.place(RtId(9), 2);
        let artifact = ScheduleArtifact {
            schedule: Arc::new(schedule),
            bound: 2,
            degradation: Some(Degradation {
                stage: "schedule",
                spent: 1234,
                action: DegradeAction::ExactToHeuristic { nodes_explored: 88 },
            }),
            time: Duration::from_millis(5),
        };
        let bytes = encode_schedule_artifact(&artifact);
        let back = decode_schedule_artifact(&bytes).unwrap();
        assert_eq!(*back.schedule, *artifact.schedule);
        assert_eq!(back.bound, artifact.bound);
        assert_eq!(back.degradation, artifact.degradation);
        assert_eq!(back.time, Duration::ZERO);
    }

    #[test]
    fn schedule_codec_rejects_corrupt_tags() {
        let artifact = ScheduleArtifact {
            schedule: Arc::new(Schedule::from_cycles(vec![vec![RtId(1)]])),
            bound: 1,
            degradation: None,
            time: Duration::ZERO,
        };
        let mut bytes = encode_schedule_artifact(&artifact);
        // The final byte is the degradation option tag; make it junk.
        *bytes.last_mut().unwrap() = 9;
        assert!(decode_schedule_artifact(&bytes).is_err());
        // Truncation is also rejected.
        assert!(decode_schedule_artifact(&bytes[..bytes.len() - 1]).is_err());
    }
}
