//! The cross-core differential conformance fleet (CI seed block).
//!
//! Compiles the application corpus on generated cores (seeds 0..64) and
//! pins the simulated microcode bit-exact against the
//! `dspcc_dfg::Interpreter` golden model. A `Mismatch` cell is a compiler
//! bug by construction; the failure message prints the `(seed, app)` pair
//! so the bug reproduces with
//! `cargo run --release --example conform -- --start <seed> --seeds 1 --apps <app>`.

use dspcc::arch::{CoreGenerator, GenConfig};
use dspcc::conform::{CellOutcome, ConformFleet};
use dspcc::{apps, cores};

/// The pinned CI block: 64 seeds × 3 corpus apps, zero mismatches.
#[test]
fn fixed_seed_block_has_zero_mismatches() {
    let report = ConformFleet::new()
        .seed_range(0..64)
        .app("fir8", apps::fir(8))
        .app("biquad3", apps::biquad_cascade(3))
        .app("sop6", apps::sum_of_products(6))
        .frames(8)
        .run();
    assert_eq!(report.cells.len(), 64 * 3);
    let mismatches: Vec<String> = report
        .mismatches()
        .map(|c| format!("(seed {:#x}, {}): {:?}", c.seed, c.app, c.outcome))
        .collect();
    assert!(mismatches.is_empty(), "conformance bugs: {mismatches:#?}");
    // The fleet must be meaningful, not vacuously green: most of these
    // small workloads compile and run on most generated cores.
    assert!(
        report.passes().count() >= report.cells.len() / 2,
        "only {} of {} cells passed — generator backbone regressed?\n{report}",
        report.passes().count(),
        report.cells.len()
    );
    // Every infeasible cell states a reason.
    for cell in report.infeasible() {
        match &cell.outcome {
            CellOutcome::Infeasible(reason) => {
                assert!(!reason.is_empty(), "bare infeasibility at {:#x}", cell.seed)
            }
            _ => unreachable!(),
        }
    }
}

/// The audio application (figure 7) across a smaller block: the heavier
/// feasibility surface — RAM/ROM overflows, register pressure, program
/// memory — still never yields a mismatch.
#[test]
fn audio_block_has_zero_mismatches() {
    let report = ConformFleet::new()
        .seed_range(0..12)
        .app("audio", apps::audio_application())
        .frames(6)
        .run();
    assert_eq!(report.mismatches().count(), 0, "{report}");
}

/// Generation is deterministic: the same seed yields a byte-identical
/// core fingerprint on every call and on every thread.
#[test]
fn generated_fingerprints_stable_across_runs_and_threads() {
    let gen = CoreGenerator::new();
    let expected: Vec<u64> = (0..24u64).map(|s| gen.generate(s).fingerprint()).collect();
    // Re-run in this thread…
    let rerun: Vec<u64> = (0..24u64).map(|s| gen.generate(s).fingerprint()).collect();
    assert_eq!(expected, rerun);
    // …and across worker threads.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let gen = CoreGenerator::new();
                    (0..24u64)
                        .map(|s| gen.generate(s).fingerprint())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    });
    // Distinct seeds that draw identical structures collide correctly: a
    // fully collapsed config makes every seed produce one structure.
    let pinned = CoreGenerator::with_config(GenConfig::degenerate());
    assert_eq!(
        pinned.generate(7).fingerprint(),
        pinned.generate(1234).fingerprint()
    );
    // And the full Core assembly is deterministic too (same ISA draw).
    let a = cores::generated_core(5);
    let b = cores::generated_core(5);
    assert_eq!(a.datapath, b.datapath);
    assert_eq!(a.controller, b.controller);
    assert_eq!(a.classification, b.classification);
    assert_eq!(a.instruction_set, b.instruction_set);
    assert_eq!(a.cover, b.cover);
}

/// The pinned merged-core block: adjacent-seed unions (the co-design
/// search's cross-core move) across the corpus never mismatch, and the
/// table is byte-identical for every worker-thread count. Buildable
/// unions must also actually compile something — the merge machinery is
/// exercised, not vacuously skipped.
#[test]
fn merged_pair_block_has_zero_mismatches_and_is_deterministic() {
    let pairs: Vec<(u64, u64)> = (0..16u64).map(|i| (2 * i, 2 * i + 1)).collect();
    let fleet = ConformFleet::new()
        .merged_pairs(pairs)
        .app("fir8", apps::fir(8))
        .app("sop6", apps::sum_of_products(6))
        .frames(6);
    let serial = fleet.clone().threads(1).run();
    let parallel = fleet.threads(4).run();
    assert_eq!(serial, parallel, "merged fleet depends on thread count");
    assert_eq!(serial.cells.len(), 16 * 2);
    let mismatches: Vec<String> = serial
        .mismatches()
        .map(|c| format!("(core {}, {}): {:?}", c.core_label(), c.app, c.outcome))
        .collect();
    assert!(mismatches.is_empty(), "merged-core bugs: {mismatches:#?}");
    for cell in &serial.cells {
        assert_eq!(cell.merged_with, Some(cell.seed + 1));
    }
    assert!(
        serial.passes().count() >= serial.cells.len() / 2,
        "only {} of {} merged cells passed — union backbone regressed?\n{serial}",
        serial.passes().count(),
        serial.cells.len()
    );
}

/// The fleet table is byte-identical for every worker-thread count.
#[test]
fn serial_and_parallel_fleet_tables_agree() {
    let fleet = ConformFleet::new()
        .seed_range(0..12)
        .app("fir6", apps::fir(6))
        .app("addtree6", apps::add_tree(6))
        .frames(6);
    let serial = fleet.clone().threads(1).run();
    let parallel = fleet.clone().threads(4).run();
    assert_eq!(serial, parallel, "fleet table depends on thread count");
    let again = fleet.threads(4).run();
    assert_eq!(parallel, again, "fleet table unstable across runs");
}
