//! End-to-end pin of the HW/SW co-design Pareto sweep (`dspcc::codesign`):
//! a small seeded grid of generated cores plus cross-core unions and
//! intra-core merge moves, scored over a two-app corpus. The acceptance
//! properties pinned here:
//!
//! * the frontier is non-empty and every frontier point verified
//!   bit-exact against the golden model (that is what `Feasible` means);
//! * zero mismatch points — a mismatch is a compiler bug by construction;
//! * the report is **byte-deterministic across worker-thread counts**:
//!   serial and parallel sweeps produce `assert_eq!`-identical reports
//!   and identical renderings;
//! * the frontier is sorted and mutually non-dominated on
//!   (corpus cycles, hardware cost).

use dspcc::codesign::{CandidateKind, Codesign};
use dspcc::{apps, PointOutcome};

fn sweep() -> Codesign {
    Codesign::new()
        .seed_range(0..6)
        .union_adjacent()
        .app("fir8", apps::fir(8))
        .app("sop6", apps::sum_of_products(6))
        .frames(4)
}

#[test]
fn codesign_sweep_is_deterministic_and_frontier_is_verified() {
    let serial = sweep().threads(1).run();
    let parallel = sweep().threads(4).run();

    // Byte-determinism across thread counts: the whole report, then the
    // rendered table (catches any Display-only divergence too).
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_string(), parallel.to_string());

    // Zero mismatches anywhere in the sweep.
    assert_eq!(
        serial.mismatches().count(),
        0,
        "mismatch points in sweep:\n{serial}"
    );

    // A non-empty frontier of verified points.
    assert!(!serial.frontier.is_empty(), "empty frontier:\n{serial}");
    for p in serial.frontier_points() {
        assert!(p.is_feasible(), "non-feasible frontier point {}", p.label);
    }

    // The sweep actually explored all three candidate kinds: seeds,
    // cross-core unions, and intra-core merge moves.
    let kinds = |k: fn(&CandidateKind) -> bool| serial.points.iter().filter(|p| k(&p.kind)).count();
    assert_eq!(kinds(|k| matches!(k, CandidateKind::Seed(_))), 6);
    assert_eq!(kinds(|k| matches!(k, CandidateKind::Union(..))), 3);
    assert!(
        kinds(|k| matches!(k, CandidateKind::Merged { .. })) > 0,
        "no merge-move candidates were generated:\n{serial}"
    );
    assert!(
        serial.points.iter().any(|p| p.label == "gen_0+gen_1"),
        "adjacent union candidate missing:\n{serial}"
    );

    // Frontier ordering + mutual non-domination on (cycles, cost).
    let axes: Vec<(u32, u64)> = serial
        .frontier_points()
        .map(|p| match &p.outcome {
            PointOutcome::Feasible(m) => (m.total_cycles, m.score),
            other => panic!("frontier point {} not feasible: {other:?}", p.label),
        })
        .collect();
    for w in axes.windows(2) {
        assert!(w[0] <= w[1], "frontier unsorted: {axes:?}");
        assert!(
            w[1].0 > w[0].0 || w[1].1 < w[0].1,
            "frontier point dominated by predecessor: {axes:?}"
        );
    }

    // Every frontier point beats or ties every feasible point on at
    // least one axis (no feasible point dominates a frontier point).
    for &(fc, fs) in &axes {
        for p in serial.feasible() {
            if let PointOutcome::Feasible(m) = &p.outcome {
                assert!(
                    !(m.total_cycles <= fc
                        && m.score <= fs
                        && (m.total_cycles < fc || m.score < fs)),
                    "feasible point {} dominates a frontier point",
                    p.label
                );
            }
        }
    }
}

#[test]
fn codesign_budget_column_tightens_the_sweep() {
    // Budgets multiply the point grid: each candidate appears once per
    // budget, and an unbounded point is never slower than its bounded
    // sibling when both are feasible.
    let report = Codesign::new()
        .seed_range(0..2)
        .merge_moves(false)
        .app("fir4", apps::fir(4))
        .frames(4)
        .budgets([None, Some(24)])
        .threads(2)
        .run();
    assert_eq!(report.points.len(), 4, "{report}");
    assert_eq!(report.mismatches().count(), 0, "{report}");
    for pair in report.points.chunks(2) {
        assert_eq!(pair[0].label, pair[1].label);
        assert_eq!(pair[0].budget, None);
        assert_eq!(pair[1].budget, Some(24));
        if let (PointOutcome::Feasible(unbounded), PointOutcome::Feasible(bounded)) =
            (&pair[0].outcome, &pair[1].outcome)
        {
            assert!(
                unbounded.total_cycles <= bounded.total_cycles,
                "budgeted point scheduled faster than unbounded:\n{report}"
            );
        }
    }
}
