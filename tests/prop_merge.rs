//! Property tests for the datapath-merge machinery: the identity plan
//! is a structural no-op, and a valid two-RF merge on a generated core
//! yields a datapath that validates and whose *re-derived* compiled
//! microcode still conforms bit-exact against the golden model.
//!
//! These are the fleet-grade guarantees behind the co-design search's
//! merge moves (`dspcc::codesign`): a merge may cost parallelism —
//! cycles may go up, a tight combination may become infeasible — but it
//! must never change what a compiled program computes.

use std::sync::Arc;

use dspcc::arch::merge::MergePlan;
use dspcc::arch::CoreGenerator;
use dspcc::conform::conform_cell;
use dspcc::isa::derive_isa;
use dspcc::{apps, cores, CellOutcome, CompileOptions, CompileSession, Core};
use proptest::prelude::*;

/// Fleet-style per-cell options: bounded fuel, serial scheduler.
fn cell_options() -> CompileOptions {
    CompileOptions {
        restarts: 2,
        sched_threads: 1,
        fuel: Some(10_000),
        ..CompileOptions::default()
    }
}

#[test]
fn identity_plan_round_trips_fingerprint() {
    let gen = CoreGenerator::new();
    for seed in 0..32u64 {
        let dp = gen.generate(seed).datapath;
        let merged = MergePlan::new().apply(&dp).unwrap();
        assert_eq!(
            merged.fingerprint(),
            dp.fingerprint(),
            "identity plan changed datapath structure for seed {seed}"
        );
    }
}

#[test]
fn identity_plan_round_trips_hand_written_cores() {
    for core in [
        cores::audio_core(),
        cores::tiny_core(),
        cores::unmerged_intermediate(),
    ] {
        let merged = MergePlan::new().apply(&core.datapath).unwrap();
        assert_eq!(
            merged.fingerprint(),
            core.datapath.fingerprint(),
            "{}",
            core.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any two distinct register files of a generated core can be merged
    /// (target = first member, the canonical in-group form) into a
    /// datapath that passes validation; compiling an app on the merged
    /// core with a re-derived instruction set then either conforms
    /// bit-exact or is rejected/quarantined with a stated reason —
    /// never a silent miscompile.
    #[test]
    fn two_rf_merge_validates_and_conforms(
        seed in 0u64..48,
        first in 0usize..16,
        offset in 1usize..16,
    ) {
        let arch = CoreGenerator::new().generate(seed);
        let n = arch.datapath.register_files().len();
        prop_assume!(n >= 2);
        let a = first % n;
        let b = (a + (offset % (n - 1)) + 1) % n;
        let rf_a = arch.datapath.register_files()[a].name().to_owned();
        let rf_b = arch.datapath.register_files()[b].name().to_owned();

        let mut plan = MergePlan::new();
        plan.merge_rfs(&[&rf_a, &rf_b], &rf_a);
        // Property 1: the merge applies and the result validates.
        let merged_dp = plan.apply(&arch.datapath).unwrap();
        prop_assert_eq!(
            merged_dp.register_files().len(),
            n - 1,
            "merging {} + {} must remove exactly one file", &rf_a, &rf_b
        );

        // Property 2: the merged core (instruction set re-derived on the
        // merged datapath) still computes what the golden model computes.
        let isa = derive_isa(&merged_dp, seed);
        let core = Arc::new(Core {
            name: format!("gen_{seed:x}/m({rf_a},{rf_b})"),
            datapath: merged_dp,
            controller: arch.controller.clone(),
            format: cores::generated_core(seed).format,
            classification: Some(isa.classification),
            instruction_set: isa.instruction_set,
            cover: isa.cover,
        });
        let session = CompileSession::new();
        let outcome = conform_cell(
            &session,
            &core,
            seed,
            "fir4",
            &apps::fir(4),
            4,
            &cell_options(),
        );
        prop_assert!(
            !matches!(outcome, CellOutcome::Mismatch(_)),
            "merged core miscompiled: {:?}", outcome
        );
    }
}
