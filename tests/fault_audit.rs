//! The seeded fault-injection oracle audit (CI seed block).
//!
//! Mutates compiled artifacts — microcode bit-flips, ROM corruption,
//! schedule cycle swaps, register redirects — on the fixed audio core
//! and demands every mutant is *detected* by the differential oracle or
//! *proven benign* by a static witness. A silent survivor is a hole in
//! the fleet; it reproduces with
//! `cargo run --release --example fault -- --start <seed> --seeds 1
//! --apps <app> --kinds <kind>`.

use dspcc::apps;
use dspcc::fault::{FaultAudit, FaultOutcome, MutationKind};

/// The pinned CI block: 32 seeds × 3 corpus apps × all mutation kinds,
/// zero silent survivors, zero refuted witnesses (paranoid mode).
#[test]
fn fixed_seed_block_has_zero_survivors() {
    let report = FaultAudit::new()
        .seed_range(0..32)
        .app("fir8", apps::fir(8))
        .app("biquad3", apps::biquad_cascade(3))
        .app("sop6", apps::sum_of_products(6))
        .frames(12)
        .paranoid(true)
        .run();
    assert_eq!(report.cells.len(), 32 * 3 * MutationKind::ALL.len());
    let survivors: Vec<String> = report
        .survived()
        .map(|c| {
            format!(
                "(seed {:#x}, {}, {}) {}: {:?}",
                c.seed,
                c.app,
                c.kind.name(),
                c.mutation,
                c.outcome
            )
        })
        .collect();
    assert!(survivors.is_empty(), "oracle holes: {survivors:#?}");
    // The audit must be meaningful, not vacuously green: every kind
    // must arm (detect or prove benign) on every app.
    for kind in MutationKind::ALL {
        for app in ["fir8", "biquad3", "sop6"] {
            let armed = report
                .cells
                .iter()
                .filter(|c| c.kind == kind && c.app == app)
                .filter(|c| {
                    c.outcome.is_detected() || matches!(c.outcome, FaultOutcome::Benign { .. })
                })
                .count();
            assert!(
                armed > 0,
                "kind {} never armed on {app}\n{report}",
                kind.name()
            );
        }
    }
    // Every benign verdict carries a non-empty witness and every skip a
    // reason.
    for cell in &report.cells {
        match &cell.outcome {
            FaultOutcome::Benign { witness } => {
                assert!(!witness.is_empty(), "bare benign at {:#x}", cell.seed)
            }
            FaultOutcome::Skipped { reason } => {
                assert!(!reason.is_empty(), "bare skip at {:#x}", cell.seed)
            }
            _ => {}
        }
    }
}

/// The audit table is byte-identical for every worker-thread count.
#[test]
fn serial_and_parallel_audit_tables_agree() {
    let audit = FaultAudit::new()
        .seed_range(0..6)
        .app("fir6", apps::fir(6))
        .app("addtree6", apps::add_tree(6))
        .frames(6);
    let serial = audit.clone().threads(1).run();
    let parallel = audit.clone().threads(4).run();
    assert_eq!(serial, parallel, "audit table depends on thread count");
    let again = audit.threads(4).run();
    assert_eq!(parallel, again, "audit table unstable across runs");
}

/// A panicking injection is contained into a `Detected`/`Panic` cell,
/// never a process abort: the whole sweep completes even when a cell's
/// toolchain path panics.
#[test]
fn sweep_completes_with_all_outcomes_classified() {
    let report = FaultAudit::new()
        .seed_range(0..4)
        .app("addtree8", apps::add_tree(8))
        .frames(4)
        .run();
    assert_eq!(report.cells.len(), 4 * MutationKind::ALL.len());
    for cell in &report.cells {
        assert!(
            !cell.outcome.is_survived(),
            "survivor in smoke block: {} {}",
            cell.mutation,
            match &cell.outcome {
                FaultOutcome::Survived { detail } => detail.as_str(),
                _ => "",
            }
        );
    }
}
