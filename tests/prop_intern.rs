//! Differential property test for the interned-symbol IR: on random
//! applications, every id-based hot path must produce output
//! **bit-identical** to the retained string-keyed reference path —
//! conflict matrix, schedule, register assignment, and microcode. This is
//! the contract that makes symbol interning a pure optimisation: names
//! are resolved once at the boundary, and nothing downstream can tell.

use dspcc::encode::reference::{allocate_registers_reference, encode_reference};
use dspcc::encode::{allocate_registers, encode, FieldLayout};
use dspcc::sched::compact::schedule_and_compact_in;
use dspcc::sched::ConflictMatrix;
use dspcc::{cores, Compiler};
use proptest::prelude::*;

/// A random straight-line expression program for the audio core (the
/// same shape as `prop_pipeline.rs`): a pool of values built from inputs,
/// taps, coefficients and operations, with one signal feedback and two
/// outputs.
fn arb_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u8..6, 0usize..8, 0usize..8), 3..14),
        proptest::collection::vec(-0.9f64..0.9, 4),
        1u32..3,
    )
        .prop_map(|(ops, coeffs, depth)| {
            let mut src = String::new();
            src.push_str("input u; signal s; output y; output z;\n");
            for (i, c) in coeffs.iter().enumerate() {
                src.push_str(&format!("coeff c{i} = {c:.6};\n"));
            }
            src.push_str("v0 := pass(u);\n");
            src.push_str("v1 := pass(s@1);\n");
            src.push_str(&format!("v2 := pass(u@{depth});\n"));
            let mut n = 3usize;
            for (op, a, b) in ops {
                let a = a % n;
                let b = b % n;
                let stmt = match op {
                    0 => format!("v{n} := add(v{a}, v{b});\n"),
                    1 => format!("v{n} := add_clip(v{a}, v{b});\n"),
                    2 => format!("v{n} := sub(v{a}, v{b});\n"),
                    3 => format!("v{n} := mlt(c{}, v{a});\n", b % 4),
                    4 => format!("v{n} := pass_clip(v{a});\n"),
                    _ => format!("v{n} := pass(v{a});\n"),
                };
                src.push_str(&stmt);
                n += 1;
            }
            src.push_str(&format!("s = pass_clip(v{});\n", n - 1));
            src.push_str(&format!("y = pass(v{});\n", n - 1));
            src.push_str(&format!("z = pass_clip(v{});\n", (n - 1).min(3)));
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conflict matrix, schedule, register assignment, and microcode of
    /// the interned pipeline are bit-identical to the string-keyed
    /// reference implementations.
    #[test]
    fn interned_pipeline_matches_string_reference(src in arb_source()) {
        let core = cores::audio_core();
        let compiled = match Compiler::new(&core).restarts(1).compile(&src) {
            Ok(c) => c,
            // Feasibility failures are legal compiler outcomes.
            Err(_) => return Ok(()),
        };
        let program = &compiled.lowering.program;

        // Conflict matrix: id-classed build vs pairwise string maps.
        let fast = ConflictMatrix::build(program);
        let reference = ConflictMatrix::build_reference(program);
        prop_assert_eq!(&fast, &reference, "conflict matrices diverge for:\n{}", src);

        // Scheduling from either matrix is the same deterministic engine;
        // identical matrices must yield identical schedules.
        let budget = core.controller.program_depth();
        let (s_fast, b_fast) =
            schedule_and_compact_in(program, &compiled.deps, &fast, Some(budget), 1, 1).unwrap();
        let (s_ref, b_ref) =
            schedule_and_compact_in(program, &compiled.deps, &reference, Some(budget), 1, 1)
                .unwrap();
        prop_assert_eq!(&s_fast, &s_ref, "schedules diverge for:\n{}", src);
        prop_assert_eq!(b_fast, b_ref);

        // Register allocation: dense id-keyed tables vs string-keyed maps.
        let pinned = vec![compiled.lowering.fp_reg.clone()];
        let a_fast = allocate_registers(program, &s_fast, &core.datapath, &pinned).unwrap();
        let a_ref =
            allocate_registers_reference(program, &s_ref, &core.datapath, &pinned).unwrap();
        prop_assert_eq!(&a_fast.mapping, &a_ref.mapping, "mappings diverge for:\n{}", src);
        prop_assert_eq!(&a_fast.peak_usage, &a_ref.peak_usage);
        for (id, rt) in a_fast.program.rts() {
            prop_assert_eq!(rt, a_ref.program.rt(id), "rewritten {} diverges for:\n{}", id, src);
        }

        // Encoding: resolved-id field matching vs string field matching.
        let layout = FieldLayout::derive(&core.datapath, core.format);
        let w_fast = encode(
            &a_fast.program,
            &s_fast,
            &layout,
            &compiled.lowering.immediates,
            core.format,
        )
        .unwrap();
        let w_ref = encode_reference(
            &a_ref.program,
            &s_ref,
            &layout,
            &compiled.lowering.immediates,
            core.format,
        )
        .unwrap();
        prop_assert_eq!(&w_fast, &w_ref, "microcode diverges for:\n{}", src);
    }
}
