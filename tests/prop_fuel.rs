//! Fuel, cancellation, and panic-containment properties.
//!
//! The fuel budget is deterministic work units — attempts,
//! justification passes, branch-and-bound nodes — never wall-clock, so
//! the same `(source, core, options)` triple must produce bit-identical
//! microcode on any machine, at any thread count, on any day.
//! Exhaustion degrades gracefully (best-so-far schedule plus a
//! [`dspcc::sched::Degradation`] report); cancellation aborts cleanly
//! without poisoning the session; hand-forged microcode surfaces as
//! typed errors instead of panics.

use dspcc::encode::{decode, EncodeError};
use dspcc::sched::{CancelToken, SchedError};
use dspcc::sim::{CoreSim, SimError};
use dspcc::{apps, cores, CompileError, CompileOptions, CompileSession};

/// Fuel-truncated compiles are bit-identical across scheduler thread
/// counts: fuel is charged to the *search structure*, not to whichever
/// worker happens to run it.
#[test]
fn same_fuel_same_microcode_across_thread_counts() {
    let core = std::sync::Arc::new(cores::audio_core());
    for fuel in [1, 3, 10_000] {
        let mut words = None;
        for threads in [1usize, 2, 8] {
            let session = CompileSession::new(); // fresh: no cross-count cache reuse
            let options = CompileOptions {
                restarts: 6,
                compaction: true,
                sched_threads: threads,
                fuel: Some(fuel),
                ..CompileOptions::default()
            };
            let compiled = session
                .compile(&core, &apps::fir(8), &options)
                .expect("fir8 compiles under any fuel");
            match &words {
                None => words = Some(compiled.microcode.words.clone()),
                Some(w) => assert_eq!(
                    w, &compiled.microcode.words,
                    "fuel {fuel}: microcode differs at sched_threads {threads}"
                ),
            }
        }
    }
}

/// More fuel never hurts: along an increasing fuel ladder the schedule
/// length is monotonically non-increasing, and the unlimited compile
/// carries no degradation report.
#[test]
fn fuel_ladder_is_monotone() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let mut prev = u32::MAX;
    for fuel in [Some(1), Some(2), Some(8), Some(64), None] {
        let options = CompileOptions {
            restarts: 6,
            compaction: true,
            fuel,
            ..CompileOptions::default()
        };
        let compiled = session.compile(&core, &apps::fir(8), &options).unwrap();
        let len = compiled.schedule.length();
        assert!(
            len <= prev,
            "fuel {fuel:?} produced a longer schedule ({len} > {prev})"
        );
        prev = len;
        if fuel.is_none() {
            assert!(
                compiled.stats.degradation.is_none(),
                "unlimited compile reported degradation: {:?}",
                compiled.stats.degradation
            );
        }
    }
}

/// A degraded (fuel-truncated) artifact is never served from cache to a
/// full-budget request: fuel is part of the schedule-stage key whenever
/// it can change the result.
#[test]
fn degraded_artifact_not_cached_under_full_budget() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let starved = CompileOptions {
        restarts: 8,
        compaction: true,
        fuel: Some(1),
        ..CompileOptions::default()
    };
    let first = session
        .compile(&core, &apps::biquad_cascade(3), &starved)
        .unwrap();
    assert!(
        first.stats.degradation.is_some(),
        "fuel 1 with 8 restarts on biquad3 should truncate the search"
    );
    // Same session, full budget: must re-run the search, not reuse the
    // truncated schedule.
    let full = CompileOptions {
        fuel: None,
        ..starved.clone()
    };
    let second = session
        .compile(&core, &apps::biquad_cascade(3), &full)
        .unwrap();
    assert!(
        second.stats.degradation.is_none(),
        "full-budget compile served a degraded cached schedule"
    );
    // And the starved request itself *is* cached: repeating it hits the
    // schedule stage and reproduces the degradation verbatim.
    let third = session
        .compile(&core, &apps::biquad_cascade(3), &starved)
        .unwrap();
    assert_eq!(first.stats.degradation, third.stats.degradation);
    assert_eq!(first.microcode.words, third.microcode.words);
    assert!(
        third.stats.cache_hits > first.stats.cache_hits,
        "repeat compile did not hit the cache"
    );
}

/// A raised [`CancelToken`] aborts the compile with
/// [`CompileError::Cancelled`] and leaves the session reusable — no
/// poisoned locks, no partially-cached artifacts.
#[test]
fn cancellation_does_not_poison_the_session() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let token = CancelToken::new();
    token.cancel();
    let err = session
        .compile_cancellable(
            &core,
            &apps::biquad_cascade(3),
            &CompileOptions::default(),
            &token,
        )
        .expect_err("raised token must abort the compile");
    assert!(
        matches!(err, CompileError::Cancelled),
        "expected Cancelled, got {err}"
    );
    // The same session still compiles the same source cleanly…
    let compiled = session
        .compile(&core, &apps::biquad_cascade(3), &CompileOptions::default())
        .expect("session poisoned by cancellation");
    // …and a fresh token that is never raised does not interfere.
    let calm = CancelToken::new();
    let again = session
        .compile_cancellable(
            &core,
            &apps::biquad_cascade(3),
            &CompileOptions::default(),
            &calm,
        )
        .unwrap();
    assert_eq!(compiled.microcode.words, again.microcode.words);
}

/// Starving the compaction search below its budget floor surfaces as
/// [`SchedError::FuelExhausted`] — a typed verdict that names the spent
/// fuel, not a panic and not a bare budget error.
#[test]
fn starved_budget_reports_fuel_exhausted() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let options = CompileOptions {
        restarts: 4,
        compaction: true,
        fuel: Some(1),
        budget: Some(1), // biquad3 cannot schedule in one cycle
        ..CompileOptions::default()
    };
    let err = session
        .compile(&core, &apps::biquad_cascade(3), &options)
        .expect_err("1-cycle budget must fail");
    match err {
        CompileError::Schedule(SchedError::FuelExhausted { spent, budget }) => {
            assert!(spent >= 1, "exhaustion must charge at least one unit");
            assert_eq!(budget, 1);
        }
        other => panic!("expected FuelExhausted, got {other}"),
    }
}

/// Corrupted microcode decodes to a typed [`EncodeError::BadOpcode`] —
/// a user-input-reachable path that used to panic.
#[test]
fn corrupt_opcode_is_a_typed_decode_error() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let compiled = session
        .compile(&core, &apps::fir(8), &CompileOptions::default())
        .unwrap();
    let mc = &compiled.microcode;
    // The audio core's RAM field has a 2-bit opcode with ops
    // {read, write}: encoding 3 addresses past the table.
    let field = mc
        .layout
        .fields()
        .iter()
        .find(|f| f.opcode_bits >= 2 && f.ops.len() < (1 << f.opcode_bits) - 1)
        .expect("audio core has a sparse opcode field");
    let mut word = mc.words[0].clone();
    let bad = (field.ops.len() + 1) as u64;
    word.set_bits(field.opcode_offset, field.opcode_bits, bad);
    match decode(&word, &mc.layout, mc.word_format) {
        Err(EncodeError::BadOpcode { opu, opcode }) => {
            assert_eq!(opu, field.opu);
            assert_eq!(opcode, bad);
        }
        other => panic!("expected BadOpcode, got {other:?}"),
    }
    // The simulator refuses the same corruption as a typed BadWord at
    // construction instead of panicking mid-run.
    let mut corrupted = (**mc).clone();
    corrupted.words[0] = word;
    match CoreSim::new(&core.datapath, &corrupted) {
        Err(SimError::BadWord { cycle, .. }) => assert_eq!(cycle, 0),
        other => panic!("expected BadWord, got {:?}", other.err()),
    }
}

/// Microcode referencing a register past its file's size is refused
/// with [`SimError::RegisterOutOfRange`] at simulator construction.
#[test]
fn out_of_range_register_is_a_typed_sim_error() {
    let core = std::sync::Arc::new(cores::audio_core());
    let session = CompileSession::new();
    let compiled = session
        .compile(&core, &apps::fir(8), &CompileOptions::default())
        .unwrap();
    let mc = &compiled.microcode;
    // rf_mult_c has 12 registers behind a 4-bit operand field: index 15
    // decodes fine but addresses past the file.
    let field = mc
        .layout
        .fields()
        .iter()
        .find(|f| f.opu == "mult")
        .expect("audio core has a multiplier field");
    let operand = &field.operands[0];
    let size = core
        .datapath
        .register_files()
        .iter()
        .find(|r| r.name() == operand.rf)
        .unwrap()
        .size();
    let max = (1u64 << operand.bits) - 1;
    assert!(max >= u64::from(size), "field cannot express an OOR index");
    let mut corrupted = (**mc).clone();
    corrupted.words[0].set_bits(field.opcode_offset, field.opcode_bits, 1);
    corrupted.words[0].set_bits(operand.offset, operand.bits, max);
    match CoreSim::new(&core.datapath, &corrupted) {
        Err(SimError::RegisterOutOfRange { rf, index }) => {
            assert_eq!(rf, operand.rf);
            assert_eq!(u64::from(index), max);
        }
        other => panic!("expected RegisterOutOfRange, got {:?}", other.err()),
    }
}
