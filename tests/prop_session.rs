//! Property tests for the staged compilation session: artifact caching
//! must be *invisible* in the output. A warm session recompile — where
//! the frontend, lowering, ISA modification, and dependence/conflict
//! analysis all come from cache — must produce the bit-identical
//! schedule, register assignment, and microcode of a cold
//! `Compiler::compile`, and fingerprints must invalidate exactly when
//! the source or the core changes.

use std::sync::Arc;

use dspcc::arch::Controller;
use dspcc::sched::list::Priority;
use dspcc::{cores, CompileOptions, CompileSession, Compiler};
use proptest::prelude::*;

/// A random straight-line audio-core application (same shape as
/// `prop_pipeline.rs`, smaller so each case compiles several times
/// cheaply).
fn arb_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u8..6, 0usize..8, 0usize..8), 3..10),
        proptest::collection::vec(-0.9f64..0.9, 4),
        1u32..3,
    )
        .prop_map(|(ops, coeffs, depth)| {
            let mut src = String::new();
            src.push_str("input u; signal s; output y;\n");
            for (i, c) in coeffs.iter().enumerate() {
                src.push_str(&format!("coeff c{i} = {c:.6};\n"));
            }
            src.push_str("v0 := pass(u);\n");
            src.push_str("v1 := pass(s@1);\n");
            src.push_str(&format!("v2 := pass(u@{depth});\n"));
            let mut n = 3usize;
            for (op, a, b) in ops {
                let a = a % n;
                let b = b % n;
                let stmt = match op {
                    0 => format!("v{n} := add(v{a}, v{b});\n"),
                    1 => format!("v{n} := add_clip(v{a}, v{b});\n"),
                    2 => format!("v{n} := sub(v{a}, v{b});\n"),
                    3 => format!("v{n} := mlt(c{}, v{a});\n", b % 4),
                    4 => format!("v{n} := pass_clip(v{a});\n"),
                    _ => format!("v{n} := pass(v{a});\n"),
                };
                src.push_str(&stmt);
                n += 1;
            }
            src.push_str(&format!("s = pass_clip(v{});\n", n - 1));
            src.push_str(&format!("y = pass(v{});\n", n - 1));
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A cached-session recompile with schedule-only options changed in
    /// between is bit-identical (schedule, assignment, microcode) to a
    /// cold `Compiler::compile` with the same options.
    #[test]
    fn warm_recompile_is_bit_identical_to_cold(src in arb_source()) {
        let core = Arc::new(cores::audio_core());
        let cold_opts = CompileOptions { restarts: 1, ..CompileOptions::default() };
        // Cold reference: fresh session inside `Compiler::compile`.
        let cold = match Compiler::new(&core).restarts(1).compile(&src) {
            Ok(c) => c,
            // Feasibility failures are legal compiler outcomes; caching
            // determinism for them is pinned below via the session path.
            Err(_) => return Ok(()),
        };
        // Warm the session with *different* schedule-stage options so the
        // final recompile reuses frontend/lower/modify/analysis artifacts
        // but must recompute schedule, regalloc, and encode.
        let session = CompileSession::new();
        let warm_opts = CompileOptions {
            restarts: 2,
            budget: Some(cold.cycles() + 8),
            priority: Priority::SinkAlap,
            ..CompileOptions::default()
        };
        session.compile(&core, &src, &warm_opts).unwrap();
        let warm = session.compile(&core, &src, &cold_opts).unwrap();
        // The warm compile skipped the front of the pipeline...
        prop_assert_eq!(warm.stats.cache_hits, 4, "for:\n{}", src);
        // ...and its outputs are bit-identical to the cold one.
        prop_assert_eq!(&*warm.schedule, &*cold.schedule, "schedule diverged for:\n{}", src);
        prop_assert_eq!(warm.schedule_bound, cold.schedule_bound);
        prop_assert_eq!(&warm.assignment.mapping, &cold.assignment.mapping,
            "mapping diverged for:\n{}", src);
        for (id, rt) in warm.assignment.program.rts() {
            prop_assert_eq!(rt, cold.assignment.program.rt(id));
        }
        prop_assert_eq!(&warm.microcode.words, &cold.microcode.words,
            "microcode diverged for:\n{}", src);
        prop_assert_eq!(warm.artificial_names.clone(), cold.artificial_names.clone());
    }

    /// Fingerprints invalidate on real edits and survive cosmetic ones:
    /// editing the source invalidates the frontend (and, for semantic
    /// edits, everything downstream); editing the core invalidates
    /// exactly the stages that read the edited component.
    #[test]
    fn source_and_core_edits_invalidate_the_fingerprint(src in arb_source()) {
        let core = Arc::new(cores::audio_core());
        let opts = CompileOptions { restarts: 1, ..CompileOptions::default() };
        let session = CompileSession::new();
        let first = match session.compile(&core, &src, &opts) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        prop_assert_eq!(first.stats.cache_hits, 0);

        // Whitespace-only edit: new source fingerprint (frontend miss),
        // same graph fingerprint — every later stage hits.
        let cosmetic = format!("{src}\n");
        let warm = session.compile(&core, &cosmetic, &opts).unwrap();
        prop_assert_eq!(warm.stats.cache_hits, 6, "for:\n{}", src);
        prop_assert_eq!(&warm.microcode.words, &first.microcode.words);

        // Semantic edit: the output op changes the graph fingerprint and
        // invalidates everything past the frontend.
        let edited = src.replacen("y = pass(", "y = pass_clip(", 1);
        prop_assert_ne!(&edited, &src);
        if let Ok(recompiled) = session.compile(&core, &edited, &opts) {
            prop_assert_eq!(recompiled.stats.cache_hits, 0, "for:\n{}", edited);
        }

        // Core edit (controller depth): the lowering, modification, and
        // analysis artifacts survive (they never read the controller);
        // scheduling and everything after it recompute under the new cap.
        let mut shrunk = (*core).clone();
        shrunk.controller = Controller::stripped(core.controller.program_depth() - 1);
        if let Ok(reshaped) = session.compile(&Arc::new(shrunk), &src, &opts) {
            prop_assert_eq!(reshaped.stats.cache_hits, 4, "for:\n{}", src);
        }
    }
}
