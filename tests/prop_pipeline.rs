//! Property-based end-to-end tests: random applications through the full
//! compiler, with the cycle-accurate simulator differentially checked
//! against the reference interpreter — the strongest correctness
//! statement the reproduction makes.

use dspcc::dfg::Interpreter;
use dspcc::num::WordFormat;
use dspcc::{cores, Compiler};
use proptest::prelude::*;

/// A random straight-line expression program for the audio core: a pool
/// of values built from inputs, taps, coefficients and operations, with
/// one signal feedback and two outputs.
fn arb_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u8..6, 0usize..8, 0usize..8), 3..14),
        proptest::collection::vec(-0.9f64..0.9, 4),
        1u32..3,
    )
        .prop_map(|(ops, coeffs, depth)| {
            let mut src = String::new();
            src.push_str("input u; signal s; output y; output z;\n");
            for (i, c) in coeffs.iter().enumerate() {
                src.push_str(&format!("coeff c{i} = {c:.6};\n"));
            }
            // Value pool: v0 = u, v1 = s@1, v2 = u@depth.
            src.push_str("v0 := pass(u);\n");
            src.push_str("v1 := pass(s@1);\n");
            src.push_str(&format!("v2 := pass(u@{depth});\n"));
            let mut n = 3usize;
            for (op, a, b) in ops {
                let a = a % n;
                let b = b % n;
                let stmt = match op {
                    0 => format!("v{n} := add(v{a}, v{b});\n"),
                    1 => format!("v{n} := add_clip(v{a}, v{b});\n"),
                    2 => format!("v{n} := sub(v{a}, v{b});\n"),
                    3 => format!("v{n} := mlt(c{}, v{a});\n", b % 4),
                    4 => format!("v{n} := pass_clip(v{a});\n"),
                    _ => format!("v{n} := pass(v{a});\n"),
                };
                src.push_str(&stmt);
                n += 1;
            }
            src.push_str(&format!("s = pass_clip(v{});\n", n - 1));
            src.push_str(&format!("y = pass(v{});\n", n - 1));
            src.push_str(&format!("z = pass_clip(v{});\n", (n - 1).min(3)));
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated code behaves exactly like the source semantics, frame
    /// after frame, for arbitrary applications.
    #[test]
    fn generated_code_matches_reference(src in arb_source(), frames in 2usize..10) {
        let core = cores::audio_core();
        let compiled = match Compiler::new(&core).restarts(1).compile(&src) {
            Ok(c) => c,
            // Feasibility failures (register pressure etc.) are legal
            // compiler outcomes, not correctness bugs.
            Err(_) => return Ok(()),
        };
        compiled
            .schedule
            .verify(&compiled.lowering.program, &compiled.deps)
            .unwrap();
        let q15 = WordFormat::q15();
        let mut sim = compiled.simulator().unwrap();
        let mut reference = Interpreter::new(&compiled.dfg, q15);
        let mut x = 911i64;
        for frame in 0..frames {
            x = (x.wrapping_mul(31) + 17) % 30000;
            let hw = sim.step_frame(&[x]).unwrap();
            let sw = reference.step(&[x]);
            prop_assert_eq!(&hw, &sw, "frame {} diverged for:\n{}", frame, src);
        }
    }

    /// The schedule is always legal w.r.t. the audio instruction set.
    #[test]
    fn schedules_always_conform_to_isa(src in arb_source()) {
        let core = cores::audio_core();
        let compiled = match Compiler::new(&core).restarts(1).compile(&src) {
            Ok(c) => c,
            Err(_) => return Ok(()),
        };
        let classification = compiled.classification.as_ref().unwrap();
        let iset = core.instruction_set.as_ref().unwrap();
        for (_, instr) in compiled.schedule.instructions() {
            let mut classes: Vec<_> = instr
                .iter()
                .filter_map(|&rt| classification.class_of(compiled.lowering.program.rt(rt)))
                .collect();
            classes.sort();
            classes.dedup();
            prop_assert!(iset.allows(&classes));
        }
    }
}
