//! Persistent artifact cache: corruption negative paths and the
//! warm-from-disk bit-identity pin.
//!
//! Each test compiles cold through a private on-disk cache, damages the
//! persisted entries in a specific way (truncation, flipped checksum
//! byte, version skew, racing writers), then compiles warm through a
//! *fresh* session and asserts two things:
//!
//! 1. the damage is **detected** — the bad entry lands in `corrupt/`
//!    with a `.reason` file and the quarantine counter ticks;
//! 2. the warm compile is **bit-identical** to the cold one anyway —
//!    microcode words, schedule, and register assignment — because a
//!    corrupt entry degrades to a recompute, never to a wrong serve.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dspcc::{apps, cores, CompileOptions, CompileSession, Compiled, DiskCache};

/// A unique, self-cleaning cache directory per test.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dspcc-cache-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TestDir(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn compile_with(cache: &Arc<DiskCache>, source: &str) -> Compiled {
    let session = CompileSession::with_disk_cache(Arc::clone(cache));
    session
        .compile(&Arc::new(cores::audio_core()), source, &options())
        .expect("corpus app compiles on the audio core")
}

fn options() -> CompileOptions {
    CompileOptions {
        restarts: 2,
        sched_threads: 1,
        ..CompileOptions::default()
    }
}

/// The persisted stage directories that must exist after a cold compile.
const PERSISTED_STAGES: [&str; 2] = ["schedule", "encode"];

fn entry_files(root: &Path, stage: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(root.join(stage))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "bin"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn assert_bit_identical(cold: &Compiled, warm: &Compiled) {
    assert_eq!(
        cold.microcode.words, warm.microcode.words,
        "microcode words diverged"
    );
    assert_eq!(
        cold.microcode.rom_image, warm.microcode.rom_image,
        "coefficient ROM diverged"
    );
    assert_eq!(*cold.schedule, *warm.schedule, "schedule diverged");
    assert_eq!(
        cold.assignment.mapping, warm.assignment.mapping,
        "register assignment diverged"
    );
}

fn quarantine_reasons(root: &Path) -> Vec<String> {
    fs::read_dir(root.join("corrupt"))
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "reason"))
                .map(|p| fs::read_to_string(p).unwrap_or_default())
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn warm_from_disk_is_bit_identical_and_counts_disk_hits() {
    let dir = TestDir::new("warm");
    let cache = Arc::new(DiskCache::new(&dir.0));
    let source = apps::fir(8);
    let cold = compile_with(&cache, &source);
    for stage in PERSISTED_STAGES {
        assert_eq!(
            entry_files(&dir.0, stage).len(),
            1,
            "cold compile persists one {stage} entry"
        );
    }
    let warm = compile_with(&cache, &source);
    assert_bit_identical(&cold, &warm);
    assert!(
        warm.stats.disk_hits >= 2,
        "schedule and encode should both come off disk, got {}",
        warm.stats.disk_hits
    );
    assert_eq!(cache.stats().quarantined, 0);
}

#[test]
fn truncated_entry_is_quarantined_and_recomputed() {
    let dir = TestDir::new("truncate");
    let cache = Arc::new(DiskCache::new(&dir.0));
    let source = apps::fir(8);
    let cold = compile_with(&cache, &source);
    // Truncate every persisted entry to half length — a torn write that
    // survived a crash.
    for stage in PERSISTED_STAGES {
        for path in entry_files(&dir.0, stage) {
            let bytes = fs::read(&path).unwrap();
            fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
    }
    let warm = compile_with(&cache, &source);
    assert_bit_identical(&cold, &warm);
    assert_eq!(warm.stats.disk_hits, 0, "no truncated entry may serve");
    let stats = cache.stats();
    assert!(
        stats.quarantined >= 2,
        "both damaged entries quarantine, got {}",
        stats.quarantined
    );
    let reasons = quarantine_reasons(&dir.0);
    assert!(!reasons.is_empty(), "quarantine leaves .reason forensics");
    // The recompute re-stored valid entries; a third compile is a pure
    // disk-hit replay and still bit-identical.
    let rewarmed = compile_with(&cache, &source);
    assert_bit_identical(&cold, &rewarmed);
    assert!(rewarmed.stats.disk_hits >= 2);
}

#[test]
fn flipped_checksum_byte_is_quarantined_with_reason() {
    let dir = TestDir::new("flip");
    let cache = Arc::new(DiskCache::new(&dir.0));
    let source = apps::sum_of_products(6);
    let cold = compile_with(&cache, &source);
    // Flip one bit in the last payload byte of each entry: header parses
    // clean, checksum must catch it.
    for stage in PERSISTED_STAGES {
        for path in entry_files(&dir.0, stage) {
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            fs::write(&path, &bytes).unwrap();
        }
    }
    let warm = compile_with(&cache, &source);
    assert_bit_identical(&cold, &warm);
    assert_eq!(warm.stats.disk_hits, 0);
    let reasons = quarantine_reasons(&dir.0);
    assert!(
        reasons.iter().any(|r| r.contains("checksum mismatch")),
        "reason files should name the checksum failure: {reasons:?}"
    );
}

#[test]
fn version_mismatch_is_quarantined_not_served() {
    let dir = TestDir::new("version");
    let cache = Arc::new(DiskCache::new(&dir.0));
    let source = apps::fir(8);
    let cold = compile_with(&cache, &source);
    // Bump the format version field (bytes 4..8, little-endian u32) as a
    // future — or corrupted — writer would leave it.
    for stage in PERSISTED_STAGES {
        for path in entry_files(&dir.0, stage) {
            let mut bytes = fs::read(&path).unwrap();
            let v = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            bytes[4..8].copy_from_slice(&(v + 1).to_le_bytes());
            fs::write(&path, &bytes).unwrap();
        }
    }
    let warm = compile_with(&cache, &source);
    assert_bit_identical(&cold, &warm);
    assert_eq!(warm.stats.disk_hits, 0);
    let reasons = quarantine_reasons(&dir.0);
    assert!(
        reasons.iter().any(|r| r.contains("version mismatch")),
        "reason files should name the version skew: {reasons:?}"
    );
}

#[test]
fn concurrent_writers_race_to_one_valid_entry() {
    let dir = TestDir::new("race");
    let source = apps::fir(8);
    // Eight threads, each with a private session *and* a private
    // DiskCache value on the same root — nothing shared in memory, so
    // every collision avoidance must come from the atomic
    // write-to-temp-then-rename protocol alone.
    let compiles: Vec<Compiled> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let root = dir.0.clone();
                let src = source.clone();
                scope.spawn(move || {
                    let cache = Arc::new(DiskCache::new(root));
                    compile_with(&cache, &src)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All racers produced the same artifact…
    for other in &compiles[1..] {
        assert_bit_identical(&compiles[0], other);
    }
    // …and the dust settles into exactly one valid entry per stage.
    let cache = Arc::new(DiskCache::new(&dir.0));
    for stage in PERSISTED_STAGES {
        assert_eq!(
            entry_files(&dir.0, stage).len(),
            1,
            "racing writers must collapse to one {stage} entry"
        );
    }
    let warm = compile_with(&cache, &source);
    assert_bit_identical(&compiles[0], &warm);
    assert!(warm.stats.disk_hits >= 2, "the surviving entries are valid");
    assert_eq!(cache.stats().quarantined, 0);
    // No temp-file litter left behind.
    let leftovers = fs::read_dir(dir.0.join("tmp"))
        .map(|rd| rd.filter_map(Result::ok).count())
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "rename cleans up every staged temp file");
}
