//! Tier-1 pinned chaos-I/O block: the crash-safety contract, stated as
//! a test.
//!
//! 7 seeds × the 5-app standard corpus × all 6 I/O fault kinds = 210
//! cells. Every cell compiles cold through a fault-injecting cache
//! backend, then warm from whatever the chaos left on disk, and must
//! end in exactly one of two states:
//!
//! * **Recovered** — both passes served the reference artifact
//!   bit-exact *and* the cell proves at least one fault was actually
//!   injected and absorbed (the witness);
//! * **a typed error** — never a panic, never a silently wrong
//!   artifact.
//!
//! A single `WrongArtifact` cell fails the suite: it means a corrupted
//! or stale cache entry was served as if it were the real compile.
//!
//! The seed window here (0..7) is deliberately disjoint from the CI
//! `service-smoke` chaos window (32..40, see `.github/workflows/ci.yml`)
//! so the two layers of defense never degenerate into one.

use dspcc::{IoFaultAudit, IoFaultKind};

#[test]
fn pinned_chaos_block_never_serves_a_wrong_artifact() {
    let report = IoFaultAudit::new().seed_range(0..7).standard_corpus().run();

    let expected = 7 * 5 * IoFaultKind::ALL.len();
    assert_eq!(report.cells.len(), expected, "{report}");

    let wrong: Vec<_> = report.wrong_artifacts().collect();
    assert!(
        wrong.is_empty(),
        "silent wrong-artifact serves: {wrong:?}\n{report}"
    );
    assert_eq!(report.skipped().count(), 0, "{report}");

    // The block must actually exercise recovery, not vacuously pass on
    // typed errors alone — and every recovered cell carries a witness
    // naming the faults it absorbed.
    let recovered: Vec<_> = report.recovered().collect();
    assert!(
        recovered.len() > expected / 2,
        "only {} of {expected} cells recovered\n{report}",
        recovered.len()
    );
    for cell in &recovered {
        match &cell.outcome {
            dspcc::IoFaultOutcome::Recovered { witness } => {
                assert!(!witness.is_empty(), "{cell:?}")
            }
            _ => unreachable!(),
        }
    }

    // Each fault kind must be represented among the recoveries: a kind
    // whose every cell errors out would mean that fault class has no
    // tested recovery path.
    for kind in IoFaultKind::ALL {
        assert!(
            recovered.iter().any(|c| c.kind == kind),
            "no recovered cell for fault kind `{kind}`\n{report}"
        );
    }
}
