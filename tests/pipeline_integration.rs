//! Cross-crate integration tests: the full figure-1b pipeline, checked at
//! every interface — schedule legality, instruction-set conformance,
//! encoding round trips, and bit-exact execution.

use dspcc::dfg::Interpreter;
use dspcc::encode::decode;
use dspcc::isa::ClassId;
use dspcc::num::WordFormat;
use dspcc::{apps, cores, Compiler};

/// Every schedule instruction of a compiled audio program maps to an
/// allowed instruction type of the core's instruction set — checked
/// against the *original* set definition, not the artificial resources
/// (closing the loop on paper section 6.3's soundness claim).
#[test]
fn audio_schedule_conforms_to_instruction_set() {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .unwrap();
    let classification = compiled.classification.as_ref().unwrap();
    let iset = core.instruction_set.as_ref().unwrap();
    for (cycle, instr) in compiled.schedule.instructions() {
        let mut classes: Vec<ClassId> = instr
            .iter()
            .filter_map(|&rt| classification.class_of(compiled.lowering.program.rt(rt)))
            .collect();
        classes.sort();
        classes.dedup();
        assert!(
            iset.allows(&classes),
            "cycle {cycle} holds classes {classes:?}, not an allowed instruction type"
        );
    }
}

/// The schedule respects dependences and resource compatibility (the
/// scheduler's own verifier) for every prepackaged workload.
#[test]
fn all_workloads_schedule_and_verify() {
    let core = cores::audio_core();
    for source in [
        apps::audio_application(),
        apps::fir(12),
        apps::biquad_cascade(4),
        apps::sum_of_products(9),
    ] {
        let compiled = Compiler::new(&core).restarts(2).compile(&source).unwrap();
        compiled
            .schedule
            .verify(&compiled.lowering.program, &compiled.deps)
            .unwrap();
    }
}

/// Microcode words decode back to exactly the operations the schedule
/// placed in each cycle.
#[test]
fn encoding_round_trips_the_schedule() {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::fir(8))
        .unwrap();
    for (cycle, instr) in compiled.schedule.instructions() {
        let decoded = decode(
            &compiled.microcode.words[cycle as usize],
            &compiled.microcode.layout,
            core.format,
        )
        .unwrap();
        // Every scheduled RT's OPU appears among the decoded actions
        // (identical RTs share one field).
        for &rt_id in instr {
            let rt = compiled.assignment.program.rt(rt_id);
            let opu = decoded
                .actions
                .iter()
                .find(|a| rt.usage_of(&a.opu).is_some());
            assert!(
                opu.is_some(),
                "cycle {cycle}: RT `{}` has no decoded action",
                rt.name()
            );
        }
        // And no action without a scheduled RT.
        for action in &decoded.actions {
            assert!(
                instr.iter().any(|&rt_id| {
                    compiled
                        .assignment
                        .program
                        .rt(rt_id)
                        .usage_of(&action.opu)
                        .is_some()
                }),
                "cycle {cycle}: spurious action on `{}`",
                action.opu
            );
        }
    }
}

/// Long-run differential test: 256 frames of the audio application,
/// generated code vs reference interpreter, all 8 ports.
#[test]
fn audio_application_long_run_differential() {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::audio_application())
        .unwrap();
    let q15 = WordFormat::q15();
    let mut sim = compiled.simulator().unwrap();
    let mut reference = Interpreter::new(&compiled.dfg, q15);
    let mut state = 0x2545F4914F6CDD1Du64;
    for frame in 0..256 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let l = (state as i64 % 20000).clamp(-32768, 32767);
        let r = ((state >> 17) as i64 % 20000).clamp(-32768, 32767);
        assert_eq!(
            sim.step_frame(&[l, r]).unwrap(),
            reference.step(&[l, r]),
            "frame {frame} diverged"
        );
    }
}

/// The two schedulers (list+compaction vs exact B&B) agree on
/// functional behaviour for a small program.
#[test]
fn exact_and_heuristic_schedules_agree_functionally() {
    let core = cores::tiny_core();
    let src = apps::sum_of_products(4);
    let heuristic = Compiler::new(&core).compile(&src).unwrap();
    let exact = Compiler::new(&core)
        .budget(heuristic.cycles())
        .exact(true)
        .compile(&src)
        .unwrap();
    assert!(exact.cycles() <= heuristic.cycles());
    let mut sim_h = heuristic.simulator().unwrap();
    let mut sim_e = exact.simulator().unwrap();
    for x in [123i64, -456, 7890] {
        assert_eq!(
            sim_h.step_frame(&[x]).unwrap(),
            sim_e.step_frame(&[x]).unwrap()
        );
    }
}

/// Folding never reports an initiation interval below the resource bound
/// or above the flat schedule.
#[test]
fn folded_ii_is_bracketed() {
    let core = cores::audio_core();
    let compiled = Compiler::new(&core)
        .restarts(2)
        .compile(&apps::biquad_cascade(4))
        .unwrap();
    let bound = dspcc::sched::list::resource_lower_bound(&compiled.lowering.program);
    let folded = compiled.fold(4, 8).unwrap();
    assert!(folded.ii() >= bound);
    assert!(folded.ii() <= compiled.cycles());
}

/// Feasibility feedback: every failure mode surfaces as the right error.
#[test]
fn feasibility_feedback_paths() {
    use dspcc::CompileError;
    let tiny = cores::tiny_core();
    // Missing hardware.
    let err = Compiler::new(&tiny)
        .compile("input u; output y; y = pass(u@1);")
        .unwrap_err();
    assert!(matches!(err, CompileError::Lower(_)));
    // Budget too tight.
    let err = Compiler::new(&tiny)
        .budget(2)
        .compile(&apps::sum_of_products(6))
        .unwrap_err();
    assert!(matches!(err, CompileError::Schedule(_)));
    // Program memory too small (audio controller stores 128 words).
    let audio = cores::audio_core();
    let too_big = apps::fir(40);
    match Compiler::new(&audio).compile(&too_big) {
        Ok(c) => assert!(c.cycles() <= 128),
        Err(e) => assert!(
            matches!(
                e,
                CompileError::Schedule(_)
                    | CompileError::ProgramTooLong { .. }
                    | CompileError::Lower(_)
            ),
            "unexpected error {e}"
        ),
    }
}
